"""Distributed explicit wave propagation over a pluggable transport.

The paper's solver is bulk-synchronous: per time step each rank applies
its local element operator and exchanges interface partial sums.  This
module executes that loop for real, with the comm/compute overlap the
paper's machine model assumes — each step applies the **interface**
elements first, posts the boundary sends, runs the **interior**
elements while the messages are in flight, then receives and
accumulates (see :mod:`repro.parallel.decomposition` for the
interface-first element ordering and split scatter plans).

The same schedule runs over either transport behind
:class:`repro.parallel.simcomm.SimComm`:

* :class:`repro.parallel.simcomm.SimWorld` — in-process mailboxes; the
  parallel semantics execute for real on one core;
* :class:`repro.parallel.transport.ProcWorld` — persistent worker
  processes exchanging boundary data through double-buffered
  shared-memory channels, so ``run()`` actually uses N cores.  Each
  worker marches its own rank's full time loop; only boundary partial
  sums and the final gathered displacement cross process boundaries.

Both paths perform the identical per-rank arithmetic in the identical
order (same phased matvec shapes, same sorted-neighbor accumulation,
same deterministic lowest-owner gather), so their trajectories are
bit-identical — the transport equivalence tests assert
``np.array_equal``, and that the per-rank :class:`TrafficStats` match
message for message.

Scope: lumped mass, Lysmer absorbing damping (the ``c1`` coupling and
hanging-node projection would add further interface reductions; the
accounting for those is already covered by the operator-level layer).

Two parallelisation axes are available.  :meth:`DistributedWaveSolver.
run` shards the **domain**: each worker owns an element partition and
exchanges interface partial sums every step.  :meth:`DistributedWave
Solver.run_shots` shards the **scenario batch**: each worker holds the
whole domain and marches its slice of the shots as one batched
(level-3) time loop — zero boundary traffic, at the cost of replicating
the full mesh per worker.  :func:`recommend_sharding` encodes the
trade-off.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Sequence

import numpy as np

from repro.fem.assembly import ElasticOperator, lumped_mass
from repro.mesh.hexmesh import HexMesh
from repro.parallel.decomposition import DistributedElasticOperator
from repro.parallel.transport import (
    WorkerFailure,
    attach_shared_array,
    create_shared_array,
    release_shared_array,
)
from repro.resilience import (
    RetryPolicy,
    check_finite,
    should_check,
    validate_cfl,
)
from repro.telemetry.timeline import MergedTimeline, RankTimeline
from repro.physics.cfl import elem_stable_dt, stable_timestep
from repro.physics.elastic import lame_from_velocities
from repro.physics.stacey import stacey_boundary_matrices, stacey_coefficients
from repro.solver.checkpoint import CheckpointManager, collective_latest_step
from repro.solver.lts import (
    DEFAULT_MAX_RATE,
    bin_rates,
    build_lts_plan,
    smooth_rates,
)
from repro.solver.wave_solver import DEFAULT_ABSORBING

from repro import telemetry


def recommend_sharding(
    nelem: int,
    nshots: int,
    nworkers: int,
    *,
    nnode: int | None = None,
    worker_mem_bytes: float = 2.0e9,
) -> str:
    """Pick the parallelisation axis for an ensemble run: ``"shots"``
    or ``"domain"``.

    Shot sharding wins whenever it is feasible, because it removes the
    per-step interface exchange entirely (the scaling bottleneck the
    paper's machine model is built around) and each worker's batched
    level-3 stiffness application is more cache-efficient than B
    separate matvecs.  It is feasible when

    * there are at least as many shots as workers (otherwise some
      workers idle — domain decomposition keeps them all busy), and
    * one worker can hold the *whole* mesh plus its shot slice's state:
      roughly the operator workspace (gather/apply buffers scale with
      ``nelem * 24`` doubles per batch column) plus six ``(nnode, 3)``
      state blocks per shot.

    Otherwise shard the domain.  Hybrid sharding (shot groups x
    subdomains) would interpolate; we keep the axes pure so the
    measured traffic of each regime stays interpretable.
    """
    if nshots < nworkers:
        return "domain"
    if nnode is None:
        nnode = int(1.3 * nelem) + 1  # conforming hex meshes: nnode ~ nelem
    b_local = -(-nshots // nworkers)  # ceil
    op_bytes = 8 * nelem * 24 * (2 * b_local + 2)
    state_bytes = 8 * 6 * nnode * 3 * b_local
    if op_bytes + state_bytes > worker_mem_bytes:
        return "domain"
    return "shots"


def _hoist_update_terms(m_local, C_local, dt):
    """Per-rank invariants of the central-difference update, computed
    once (identically for both transports)."""
    m2 = [2.0 * m for m in m_local]
    inv_A = [1.0 / (m + 0.5 * dt * C) for m, C in zip(m_local, C_local)]
    prev_coef = [-m + 0.5 * dt * C for m, C in zip(m_local, C_local)]
    return m2, inv_A, prev_coef


def _make_force_caller(force_fn, nnode: int):
    """Wrap ``force_fn`` as ``t -> global force field``, reusing one
    preallocated buffer when it supports the serial solver's
    ``(t, out)`` convention — no per-step node-sized allocation."""
    try:
        params = [
            p
            for p in inspect.signature(force_fn).parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
        ]
        takes_out = len(params) >= 2
    except (TypeError, ValueError):  # builtins, odd callables
        takes_out = False
    if not takes_out:
        return force_fn
    buf = np.zeros((nnode, 3))
    return lambda t: force_fn(t, buf)


def _local_update(rhs, t_r, u, u_prev, u_next, m2, inv_A, prev_coef, b, dt2):
    """One rank's in-place central-difference update.  Shared by the
    in-process and worker-process paths so the arithmetic sequence is
    bit-identical across transports."""
    np.multiply(rhs, -dt2, out=rhs)
    np.multiply(m2, u, out=t_r)
    np.add(rhs, t_r, out=rhs)
    np.multiply(prev_coef, u_prev, out=t_r)
    np.add(rhs, t_r, out=rhs)
    if b is not None:
        np.multiply(b, dt2, out=t_r)
        np.add(rhs, t_r, out=rhs)
    np.multiply(rhs, inv_A, out=u_next)


def _lts_rank_levels(conn, h, lam, mu, nloc, plan, m, C, dt, r_int, n_iface):
    """Per-level execution state for one rank's clustered-leapfrog loop
    (see :mod:`repro.solver.lts` for the schedule contract).  Shared by
    the in-process and worker-process paths so the per-rank arithmetic
    is bit-identical across transports.

    The level whose rate equals the common interface rate ``r_int``
    carries the rank's interface elements (they are clamped to exactly
    that rate, and the partition orders them first, so they lead the
    level's ascending own-element list) and gets a split operator for
    the interface/interior comm-overlap phases; every other level is
    purely rank-local.
    """
    levels = []
    for lv in plan.levels:
        e, own = lv.elems, lv.own_nodes
        dtc = lv.rate * dt
        is_iface = r_int > 0 and lv.rate == r_int and n_iface > 0
        op = ElasticOperator(
            conn[e], h[e], lam[e], mu[e], nloc,
            split_elems=n_iface if is_iface else None,
        )
        mo, Co = m[own], C[own]
        n_own, n_int = len(own), len(lv.interp_nodes)
        levels.append(
            {
                "rate": lv.rate,
                "dtc2": dtc * dtc,
                "own": own,
                "interp": lv.interp_nodes,
                "op": op,
                "is_iface": is_iface,
                "m2": 2.0 * mo,
                "inv_A": 1.0 / (mo + 0.5 * dtc * Co),
                "prev_coef": -mo + 0.5 * dtc * Co,
                "r": np.empty((n_own, 3)),
                "tmp": np.empty((n_own, 3)),
                "u_own": np.empty((n_own, 3)),
                "up_own": np.empty((n_own, 3)),
                "sv": np.empty((n_int, 3)),
                "iv": np.empty((n_int, 3)),
                "fired": 0,
            }
        )
    return levels


def _lts_interp_in(lev, u, u_prev, j):
    """Overwrite the level's coarser (rate ``2r``) neighbor points with
    their time-interpolated values for the matvecs at fine index ``j``;
    returns the saved exact values (or None) for :func:`_lts_interp_out`.
    """
    interp = lev["interp"]
    if not len(interp):
        return None
    sv, iv = lev["sv"], lev["iv"]
    np.take(u, interp, axis=0, out=sv)
    np.take(u_prev, interp, axis=0, out=iv)
    if j % (2 * lev["rate"]):  # theta = 1/2 midpoint, else theta = 0
        np.add(iv, sv, out=iv)
        np.multiply(iv, 0.5, out=iv)
    u[interp] = iv
    return sv


def _lts_interp_out(lev, u, sv):
    if sv is not None:
        u[lev["interp"]] = sv


def _lts_level_update(lev, u, u_prev, Ku, b):
    """Advance one level's own grid points by its cluster step ``dtc``
    (in-place central difference, same op sequence as
    :func:`_local_update` with the level-local coefficients)."""
    own = lev["own"]
    r, t_r = lev["r"], lev["tmp"]
    np.take(Ku, own, axis=0, out=r)
    np.multiply(r, -lev["dtc2"], out=r)
    uo = lev["u_own"]
    np.take(u, own, axis=0, out=uo)
    np.multiply(lev["m2"], uo, out=t_r)
    np.add(r, t_r, out=r)
    upo = lev["up_own"]
    np.take(u_prev, own, axis=0, out=upo)
    np.multiply(lev["prev_coef"], upo, out=t_r)
    np.add(r, t_r, out=r)
    if b is not None:
        np.take(b, own, axis=0, out=t_r)
        np.multiply(t_r, lev["dtc2"], out=t_r)
        np.add(r, t_r, out=r)
    np.multiply(r, lev["inv_A"], out=r)
    u_prev[own] = uo
    u[own] = r


def _rank_program_lts(comm, payload):
    """SPMD rank program for the clustered-LTS loop: one rank's full
    multirate time march inside a persistent worker.

    The loop runs over fine step indices at the rank's own finest rate;
    every level fires when due (coarsest first).  Only the common
    interface-rate level exchanges boundary partial sums — every other
    fire is purely local — so ranks synchronize ``r_int`` times less
    often than the global-dt program.  Checkpoints, NaN poisoning, and
    health checks happen only at full sync boundaries (multiples of the
    global coarsest rate ``r_sync``, identical on every rank), which
    keeps the collective-restart recovery machinery working unchanged.
    """
    p = payload
    dt, nsteps = p["dt"], p["nsteps"]
    r_int, r_sync = p["r_int"], p["r_sync"]
    plan = build_lts_plan(p["conn"], p["nloc"], dt=dt, rates=p["rates"])
    levels = _lts_rank_levels(
        p["conn"], p["h"], p["lam"], p["mu"], p["nloc"], plan,
        p["m"], p["C"], dt, r_int, p["n_iface"],
    )
    neighbors = p["neighbors"]
    force_fn = _make_force_caller(p["force_fn"], p["result"][1])
    gnodes = p["gnodes"]
    rank = comm.rank
    nloc = p["nloc"]
    u_prev = np.zeros((nloc, 3))
    u = np.zeros((nloc, 3))
    Ku = np.empty((nloc, 3))
    rbuf = {o: np.empty((len(loc), 3)) for o, loc in neighbors}
    t_compute = 0.0
    t_wait = 0.0
    clock = time.perf_counter
    tl = (
        RankTimeline(rank, nsteps,
                     trace_id=telemetry.get_trace_context())
        if p.get("timeline")
        else None
    )
    dur = tl.durations if tl is not None else None

    mgr = None
    ckpt_every = int(p.get("ckpt_every", 0) or 0)
    if p.get("ckpt_dir"):
        mgr = CheckpointManager(
            p["ckpt_dir"], ckpt_every,
            keep=p.get("ckpt_keep", 3), prefix=f"rank{rank}",
        )
    k0 = 0
    resume_step = p.get("resume_step")
    if mgr is not None and resume_step is not None:
        ck = mgr.load_step(resume_step)
        u_prev[:] = ck.arrays["u_prev"]
        u[:] = ck.arrays["u"]
        k0 = int(ck.meta["next_k"])
        if k0 % r_sync:
            raise ValueError(
                f"LTS resume index {k0} is not a sync boundary "
                f"(sync rate {r_sync})"
            )
    last_sync_saved = k0
    fplan = p.get("faults")
    health_interval = int(p.get("health_interval", 0))
    world = comm.world
    if fplan is not None and hasattr(world, "fault_plan"):
        world.fault_plan = fplan  # send-path faults (drop/delay/corrupt)

    r_min = plan.min_rate
    for j in range(k0, nsteps, r_min):
        if fplan is not None:
            fplan.on_step_begin(rank, j)
            if hasattr(world, "fault_step"):
                world.fault_step = j
        comm.heartbeat(j)
        t = j * dt
        tA = clock()
        wait_j = 0.0
        iface_fired = False
        b_global = force_fn(t)
        b = b_global[gnodes] if b_global is not None else None
        for lev in levels:
            if j % lev["rate"]:
                continue
            lev["fired"] += 1
            op = lev["op"]
            if lev["is_iface"]:
                iface_fired = True
                sv = _lts_interp_in(lev, u, u_prev, j)
                op.matvec_interface(u, Ku)
                comm.add_flops(op.flops_per_matvec)
                t1 = clock()
                for o, loc in neighbors:
                    comm.Send(Ku[loc], o, tag=rank)
                t2 = clock()
                op.matvec_interior_acc(u, Ku)
                _lts_interp_out(lev, u, sv)
                t3 = clock()
                for o, loc in neighbors:
                    comm.Recv(o, tag=o, out=rbuf[o])
                t4 = clock()
                for o, loc in neighbors:
                    Ku[loc] += rbuf[o]
                    comm.add_flops(3 * len(loc))
                if neighbors:
                    comm.stats.exchanges += 1
                _lts_level_update(lev, u, u_prev, Ku, b)
                wait_j += (t2 - t1) + (t4 - t3)
                if dur is not None:
                    dur[j, 0] = t1 - tA  # up to interface matvec
                    dur[j, 1] = t2 - t1  # send
                    dur[j, 2] = t3 - t2  # interior
                    dur[j, 3] = t4 - t3  # recv
            else:
                sv = _lts_interp_in(lev, u, u_prev, j)
                op.matvec(u, out=Ku)
                comm.add_flops(op.flops_per_matvec)
                _lts_interp_out(lev, u, sv)
                _lts_level_update(lev, u, u_prev, Ku, b)
            comm.add_flops(15 * len(lev["own"]))
        tB = clock()
        t_wait += wait_j
        t_compute += (tB - tA) - wait_j
        if dur is not None:
            if iface_fired:
                dur[j, 4] = (tB - tA) - dur[j, :4].sum()
            else:
                dur[j, 0] = tB - tA
        s = j + r_min
        if s % r_sync == 0:  # sync: every node holds u(s * dt)
            if fplan is not None:
                fplan.poison_state(rank, s - 1, u)
            if health_interval and should_check(
                s - 1, nsteps, health_interval
            ):
                check_finite(u, step=s - 1, rank=rank, field="u")
            if (
                mgr is not None
                and ckpt_every > 0
                and s // ckpt_every > last_sync_saved // ckpt_every
            ):
                mgr.save(
                    s - 1, {"u_prev": u_prev, "u": u},
                    {"next_k": s, "lts_rate": r_sync},
                )
                last_sync_saved = s

    if fplan is not None and hasattr(world, "fault_plan"):
        world.fault_plan = None

    name, nnode_global = p["result"]
    shm, res = attach_shared_array(name, (nnode_global, 3))
    res[p["gather_nodes"]] = u[p["gather_local"]]
    del res  # drop the exported view before closing the mapping
    shm.close()
    out = {
        "t_compute": t_compute,
        "t_wait": t_wait,
        "nsteps": nsteps,
        "lts_fired": {lev["rate"]: lev["fired"] for lev in levels},
    }
    if tl is not None:
        out["timeline"] = tl.to_payload()
    return out


def _rank_program(comm, payload):
    """SPMD rank program: one rank's full time loop, executed inside a
    persistent worker over the shared-memory transport.

    Boundary partial sums move through ``comm`` (double-buffered
    channels: sends complete without waiting, so the interior matvec
    genuinely overlaps the exchange); the final displacement lands in
    the named shared result array, each rank writing the grid points it
    is the lowest owner of.  Returns wall-time split into compute and
    communication-wait for the scaling benchmark.

    Resilience hooks (all opt-in through the payload): a per-rank
    :class:`~repro.solver.checkpoint.CheckpointManager` snapshots the
    leapfrog restart pair every ``ckpt_every`` steps and the loop can
    start from a ``resume_step`` instead of rest; a bound
    :class:`~repro.resilience.FaultPlan` drives the injection hooks
    (kill / send faults / NaN poisoning); ``health_interval`` arms the
    NaN/Inf sentinel; heartbeats keep the master's failure detector
    informed on long quiet stretches.
    """
    p = payload
    op = ElasticOperator(
        p["conn"], p["h"], p["lam"], p["mu"], p["nloc"],
        split_elems=p["n_iface"],
    )
    neighbors = p["neighbors"]  # [(rank, local idx of shared nodes)]
    m2, inv_A, prev_coef = p["m2"], p["inv_A"], p["prev_coef"]
    dt, dt2, nsteps = p["dt"], p["dt"] * p["dt"], p["nsteps"]
    force_fn = _make_force_caller(p["force_fn"], p["result"][1])
    gnodes = p["gnodes"]
    rank = comm.rank
    nloc = p["nloc"]
    u_prev = np.zeros((nloc, 3))
    u = np.zeros((nloc, 3))
    u_next = np.zeros((nloc, 3))
    Ku = np.empty((nloc, 3))
    tmp = np.empty((nloc, 3))
    rbuf = {o: np.empty((len(loc), 3)) for o, loc in neighbors}
    flops_mv = op.flops_per_matvec
    t_compute = 0.0
    t_wait = 0.0
    # the master's telemetry flag does not propagate into the worker
    # process, so per-step timeline recording is requested through the
    # payload; the t0..t5 readings are taken either way (the scaling
    # benchmark consumes t_compute/t_wait), recording just keeps them
    tl = (
        RankTimeline(rank, nsteps,
                     trace_id=telemetry.get_trace_context())
        if p.get("timeline")
        else None
    )
    dur = tl.durations if tl is not None else None

    mgr = None
    if p.get("ckpt_dir"):
        mgr = CheckpointManager(
            p["ckpt_dir"],
            p.get("ckpt_every", 0),
            keep=p.get("ckpt_keep", 3),
            prefix=f"rank{rank}",
        )
    k0 = 0
    resume_step = p.get("resume_step")
    if mgr is not None and resume_step is not None:
        ck = mgr.load_step(resume_step)
        u_prev[:] = ck.arrays["u_prev"]
        u[:] = ck.arrays["u"]
        k0 = int(ck.meta["next_k"])
    plan = p.get("faults")
    health_interval = int(p.get("health_interval", 0))
    world = comm.world
    if plan is not None and hasattr(world, "fault_plan"):
        world.fault_plan = plan  # send-path faults (drop/delay/corrupt)

    for k in range(k0, nsteps):
        if plan is not None:
            plan.on_step_begin(rank, k)
            if hasattr(world, "fault_step"):
                world.fault_step = k
        comm.heartbeat(k)
        t = k * dt
        t0 = time.perf_counter()
        b_global = force_fn(t)
        b = b_global[gnodes] if b_global is not None else None
        op.matvec_interface(u, Ku)
        comm.add_flops(flops_mv)
        t1 = time.perf_counter()
        for o, loc in neighbors:
            comm.Send(Ku[loc], o, tag=rank)
        t2 = time.perf_counter()
        op.matvec_interior_acc(u, Ku)
        t3 = time.perf_counter()
        for o, loc in neighbors:
            comm.Recv(o, tag=o, out=rbuf[o])
        t4 = time.perf_counter()
        for o, loc in neighbors:
            Ku[loc] += rbuf[o]
            comm.add_flops(3 * len(loc))
        if neighbors:
            comm.stats.exchanges += 1
        _local_update(
            Ku, tmp, u, u_prev, u_next, m2, inv_A, prev_coef, b, dt2
        )
        u_prev, u, u_next = u, u_next, u_prev
        comm.add_flops(15 * nloc)
        t5 = time.perf_counter()
        t_compute += (t1 - t0) + (t3 - t2) + (t5 - t4)
        t_wait += (t2 - t1) + (t4 - t3)
        if dur is not None:
            dur[k, 0] = t1 - t0  # interface (+ force eval)
            dur[k, 1] = t2 - t1  # send
            dur[k, 2] = t3 - t2  # interior
            dur[k, 3] = t4 - t3  # recv
            dur[k, 4] = t5 - t4  # accumulate + update
        if plan is not None:
            plan.poison_state(rank, k, u)  # u is x^{k+1} after rotation
        if health_interval and should_check(k, nsteps, health_interval):
            check_finite(u, step=k, rank=rank, field="u")
        if mgr is not None and mgr.due(k):
            mgr.save(k, {"u_prev": u_prev, "u": u}, {"next_k": k + 1})

    if plan is not None and hasattr(world, "fault_plan"):
        world.fault_plan = None

    name, nnode_global = p["result"]
    shm, res = attach_shared_array(name, (nnode_global, 3))
    res[p["gather_nodes"]] = u[p["gather_local"]]
    del res  # drop the exported view before closing the mapping
    shm.close()
    out = {"t_compute": t_compute, "t_wait": t_wait, "nsteps": nsteps}
    if tl is not None:
        out["timeline"] = tl.to_payload()
    return out


def _fused_build_state(p, dt):
    """Per-rank execution state for the fused (communication-avoiding)
    window march, built from the payload's perspective descriptions.
    Shared by the in-process and worker-process paths so the per-rank
    arithmetic is bit-identical across transports.

    The own perspective gets the identical split operator and hoisted
    update coefficients as the one-step-per-exchange program (same
    expressions over the same slices), so its floating-point sequence
    is structurally — not just empirically — the k=1 sequence.  Ghost
    perspectives are plain (unsplit) operators over the owner-ordered
    halo element subsets; their per-node partial sums accumulate in the
    owner's ascending slot order, which is what keeps the replicated
    arithmetic bitwise-equal to what the owner itself computes.
    """
    persps = {}
    for q in p["perspectives"]:
        n = q["nloc"]
        m, C = q["m"], q["C"]
        op = ElasticOperator(
            q["conn"], q["h"], q["lam"], q["mu"], n,
            split_elems=q["n_iface"] if q["own"] else None,
        )
        persps[q["owner"]] = {
            "own": q["own"],
            "op": op,
            "gnodes": q["gnodes"],
            "m2": 2.0 * m,
            "inv_A": 1.0 / (m + 0.5 * dt * C),
            "prev_coef": -m + 0.5 * dt * C,
            "u": np.zeros((n, 3)),
            "u_prev": np.zeros((n, 3)),
            "u_next": np.zeros((n, 3)),
            "Ku": np.empty((n, 3)),
            "tmp": np.empty((n, 3)),
        }
    adds = [
        (dst, src, di, si, np.empty((len(di), 3)))
        for (dst, src, di, si) in p["adds"]
    ]
    sends = [
        (dest, idx, np.empty((2, len(idx), 3)))
        for dest, idx in p["sends"]
    ]
    recvs = [
        (o, np.empty((2, len(persps[o]["u"]), 3)))
        for o in sorted(persps)
        if not persps[o]["own"]
    ]
    own = next(q for q in persps.values() if q["own"])
    return {
        "persps": persps,
        "adds": adds,
        "sends": sends,
        "recvs": recvs,
        "own": own,
        "dt2": dt * dt,
    }


def _fused_march_step(state, b_global, add_flops):
    """One fused inner step: every perspective applies its stiffness
    operator, boundary partial sums cross between perspectives (the
    in-halo replica of the unfused transport exchange), every
    perspective updates and rotates.

    The partial-sum snapshot (``np.take`` into per-add buffers) must
    complete for *all* adds before any is applied — the unfused
    exchange ships pre-accumulation partials, so a perspective's ``Ku``
    may not be mutated while another perspective still reads from it.
    Applies are grouped by destination with ascending source, the exact
    neighbor order of the unfused receive loop.
    """
    persps = state["persps"]
    dt2 = state["dt2"]
    for q in persps.values():
        op = q["op"]
        if q["own"]:
            op.matvec_interface(q["u"], q["Ku"])
            op.matvec_interior_acc(q["u"], q["Ku"])
        else:
            op.matvec(q["u"], out=q["Ku"])
        add_flops(op.flops_per_matvec)
    for _, src, _, si, buf in state["adds"]:
        np.take(persps[src]["Ku"], si, axis=0, out=buf)
    for dst, _, di, _, buf in state["adds"]:
        persps[dst]["Ku"][di] += buf
        add_flops(3 * len(di))
    for q in persps.values():
        b = b_global[q["gnodes"]] if b_global is not None else None
        _local_update(
            q["Ku"], q["tmp"], q["u"], q["u_prev"], q["u_next"],
            q["m2"], q["inv_A"], q["prev_coef"], b, dt2,
        )
        q["u_prev"], q["u"], q["u_next"] = q["u"], q["u_next"], q["u_prev"]
        add_flops(15 * len(q["u"]))


def _rank_program_fused(comm, payload):
    """SPMD rank program for communication-avoiding stepping: march
    ``k`` leapfrog steps per transport round-trip inside a persistent
    worker.

    Each window starts with one aggregated refresh per directed halo
    pair — the owner's ``[u; u_prev]`` restacked at the requester's
    replica nodes — replacing the ``k`` per-step boundary exchanges of
    :func:`_rank_program`; the window then marches entirely locally,
    recomputing the ghost perspectives redundantly.  The owned region
    stays bitwise-identical to the unfused loop (errors at the halo
    fringe advance one element ring per step and the halo is ``k``
    rings deep).

    Checkpoints, NaN poisoning, and health checks happen only at
    window boundaries — the only steps where the rank's own state is
    globally consistent — with the same quotient-advance cadence rule
    the LTS program uses, so collective-restart recovery works
    unchanged; fault kill hooks still fire at every inner step, and a
    mid-window kill rewinds to the last boundary checkpoint.
    """
    p = payload
    k = int(p["k"])
    dt, nsteps = p["dt"], p["nsteps"]
    state = _fused_build_state(p, dt)
    own = state["own"]
    force_fn = _make_force_caller(p["force_fn"], p["result"][1])
    rank = comm.rank
    clock = time.perf_counter
    t_compute = 0.0
    t_wait = 0.0
    tl = (
        RankTimeline(rank, nsteps,
                     trace_id=telemetry.get_trace_context())
        if p.get("timeline")
        else None
    )
    dur = tl.durations if tl is not None else None

    mgr = None
    ckpt_every = int(p.get("ckpt_every", 0) or 0)
    if p.get("ckpt_dir"):
        mgr = CheckpointManager(
            p["ckpt_dir"], ckpt_every,
            keep=p.get("ckpt_keep", 3), prefix=f"rank{rank}",
        )
    k0 = 0
    resume_step = p.get("resume_step")
    if mgr is not None and resume_step is not None:
        ck = mgr.load_step(resume_step)
        own["u_prev"][:] = ck.arrays["u_prev"]
        own["u"][:] = ck.arrays["u"]
        k0 = int(ck.meta["next_k"])
        if k0 % k and k0 != nsteps:
            raise ValueError(
                f"fused resume index {k0} is not an exchange boundary "
                f"(steps_per_exchange {k})"
            )
    last_saved = k0
    fplan = p.get("faults")
    health_interval = int(p.get("health_interval", 0))
    world = comm.world
    if fplan is not None and hasattr(world, "fault_plan"):
        world.fault_plan = fplan  # send-path faults (drop/delay/corrupt)

    for s0 in range(k0, nsteps, k):
        if fplan is not None:
            fplan.on_step_begin(rank, s0)
            if hasattr(world, "fault_step"):
                world.fault_step = s0  # sends only happen at s0
        comm.heartbeat(s0)
        # window-start refresh: every perspective's full restart pair,
        # one message per directed halo pair (also runs at step 0 and
        # after a resume, so ghosts never start stale)
        t1 = clock()
        for dest, idx, sbuf in state["sends"]:
            np.take(own["u"], idx, axis=0, out=sbuf[0])
            np.take(own["u_prev"], idx, axis=0, out=sbuf[1])
            comm.Send(sbuf, dest, tag=rank)
        t2 = clock()
        for o, rbuf in state["recvs"]:
            comm.Recv(o, tag=o, out=rbuf)
            q = state["persps"][o]
            q["u"][:] = rbuf[0]
            q["u_prev"][:] = rbuf[1]
        t3 = clock()
        if state["sends"] or state["recvs"]:
            comm.stats.exchanges += 1
        t_wait += t3 - t1
        if dur is not None:
            dur[s0, 1] = t2 - t1  # send
            dur[s0, 3] = t3 - t2  # recv
        s_end = min(s0 + k, nsteps)
        for s in range(s0, s_end):
            if fplan is not None and s != s0:
                fplan.on_step_begin(rank, s)
            comm.heartbeat(s)
            tA = clock()
            b_global = force_fn(s * dt)
            _fused_march_step(state, b_global, comm.add_flops)
            tB = clock()
            t_compute += tB - tA
            if dur is not None:
                dur[s, 0] += tB - tA
        # window boundary: own u holds x^{s_end} exactly
        if fplan is not None:
            fplan.poison_state(rank, s_end - 1, own["u"])
        if health_interval and should_check(
            s_end - 1, nsteps, health_interval
        ):
            check_finite(own["u"], step=s_end - 1, rank=rank, field="u")
        if (
            mgr is not None
            and ckpt_every > 0
            and s_end // ckpt_every > last_saved // ckpt_every
        ):
            mgr.save(
                s_end - 1,
                {"u_prev": own["u_prev"], "u": own["u"]},
                {"next_k": s_end, "fused_k": k},
            )
            last_saved = s_end

    if fplan is not None and hasattr(world, "fault_plan"):
        world.fault_plan = None

    name, nnode_global = p["result"]
    shm, res = attach_shared_array(name, (nnode_global, 3))
    res[p["gather_nodes"]] = own["u"][p["gather_local"]]
    del res  # drop the exported view before closing the mapping
    shm.close()
    out = {
        "t_compute": t_compute,
        "t_wait": t_wait,
        "nsteps": nsteps,
        "fused_k": k,
    }
    if tl is not None:
        out["timeline"] = tl.to_payload()
    return out


def _march_shot_slice(
    op, m2, inv_A, prev_coef, force_fns, nnode, dt, nsteps, add_flops=None
):
    """March one worker's shot slice over the *whole* domain as a
    single batched time loop.  Shared by the in-process and
    worker-process paths so shot-sharded trajectories are bit-identical
    across transports; each column also reproduces the corresponding
    single-shot run bit for bit (the batched ``matmat`` guarantees
    per-column identity, and every other term is elementwise).

    ``m2``/``inv_A``/``prev_coef`` carry a trailing broadcast axis;
    returns the final ``(nnode, 3, B)`` displacement block.
    """
    B = len(force_fns)
    dt2 = dt * dt
    callers = [_make_force_caller(fn, nnode) for fn in force_fns]
    u_prev = np.zeros((nnode, 3, B))
    u = np.zeros((nnode, 3, B))
    u_next = np.zeros((nnode, 3, B))
    Ku = np.empty((nnode, 3, B))
    tmp = np.empty((nnode, 3, B))
    fbuf = np.zeros((nnode, 3, B))
    # kernel-provided batched count (cannot drift from the 1-RHS rate)
    flops_step = op.flops_per_matmat(B) + 15 * nnode * B

    for k in range(nsteps):
        t = k * dt
        live = False
        for b, fn in enumerate(callers):
            f = fn(t)
            if f is None:
                fbuf[:, :, b] = 0.0
            else:
                fbuf[:, :, b] = f
                live = True
        op.matmat(u, out=Ku)
        _local_update(
            Ku, tmp, u, u_prev, u_next, m2, inv_A, prev_coef,
            fbuf if live else None, dt2,
        )
        u_prev, u, u_next = u, u_next, u_prev
        if add_flops is not None:
            add_flops(flops_step)
    return u


def _shot_program(comm, payload):
    """Shot-sharded SPMD program: build the global operator and march
    this worker's slice of the scenario batch.  No sends, no receives —
    the transport carries nothing but the final states, written into
    the named shared result array (disjoint shot rows per worker)."""
    p = payload
    idx = p["shots"]
    name, B, nnode = p["result"]
    if len(idx) == 0:
        return {"t_compute": 0.0, "nsteps": p["nsteps"], "nshots": 0}
    op = ElasticOperator(p["conn"], p["h"], p["lam"], p["mu"], nnode)
    t0 = time.perf_counter()
    u = _march_shot_slice(
        op, p["m2"], p["inv_A"], p["prev_coef"], p["force_fns"],
        nnode, p["dt"], p["nsteps"], add_flops=comm.add_flops,
    )
    t_compute = time.perf_counter() - t0
    shm, res = attach_shared_array(name, (B, nnode, 3))
    res[idx] = np.moveaxis(u, 2, 0)
    del res  # drop the exported view before closing the mapping
    shm.close()
    return {
        "t_compute": t_compute, "nsteps": p["nsteps"], "nshots": len(idx)
    }


class DistributedWaveSolver:
    """SPMD central-difference elastodynamics on an element partition.

    Each rank holds copies of the grid points its elements touch; nodal
    quantities that must be globally consistent (mass, boundary
    damping) are interface-summed once at setup, and the stiffness
    partial sums are exchanged every step.

    ``world`` selects the transport: a
    :class:`~repro.parallel.simcomm.SimWorld` runs every rank
    in-process (mailbox exchange, one core); a
    :class:`~repro.parallel.transport.ProcWorld` dispatches the rank
    programs to its persistent worker processes (shared-memory
    exchange, N cores).  On the process transport ``force_fn`` must be
    picklable (a module-level function or callable object) and
    ``callback`` is not supported.
    """

    def __init__(
        self,
        mesh: HexMesh,
        material,
        parts: np.ndarray,
        world,
        *,
        absorbing: Sequence[tuple[int, int]] = DEFAULT_ABSORBING,
        dt: float | None = None,
        cfl_safety: float = 0.5,
        lts: int | bool = 0,
        steps_per_exchange: int | str = 1,
    ):
        if len(np.unique(mesh.elem_level)) > 1:
            raise ValueError(
                "DistributedWaveSolver requires a conforming mesh "
                "(hanging-node projection is not distributed)"
            )
        self.mesh = mesh
        self.world = world
        # one global material query, sliced per rank below (and again
        # for the worker payloads) — never queried per rank
        vs, vp, rho = material.query(mesh.elem_centers)
        lam, mu = lame_from_velocities(vs, vp, rho)
        self._lam, self._mu = lam, mu
        self._vp = vp
        self.dist = DistributedElasticOperator(mesh, lam, mu, parts, world)
        self.dt = dt if dt is not None else stable_timestep(
            mesh.elem_h, vp, safety=cfl_safety
        )

        # globally consistent nodal mass and boundary damping, sliced
        # per rank (setup-time exchange, accounted once)
        m_global = lumped_mass(mesh.conn, mesh.elem_h, rho, mesh.nnode)
        faces = []
        for axis, side in absorbing:
            idx, fnodes = mesh.boundary_faces(axis, side)
            coeffs = stacey_coefficients(lam[idx], mu[idx], rho[idx])
            faces.append((fnodes, mesh.elem_h[idx], axis, side, coeffs))
        C_global, _ = stacey_boundary_matrices(
            faces, mesh.nnode, include_c1=False
        )
        # kept whole for the shot-sharded path (each worker then needs
        # the full-domain mass/damping, not a rank slice)
        self._m_global = m_global
        self._C_global = C_global
        self.m_local = [m_global[rp.nodes][:, None] for rp in self.dist.ranks]
        self.C_local = [C_global[rp.nodes] for rp in self.dist.ranks]
        for r, rp in enumerate(self.dist.ranks):
            # account the setup exchange (mass + damping on interfaces)
            for o, (loc, _) in rp.shared_with.items():
                world.stats[r].record_send(r, o, 8 * 4 * len(loc))
        #: default LTS setting for :meth:`run` (``0``/``False`` = off,
        #: ``True`` = on with the default rate cap, an int = the cap)
        self.lts = lts
        self._lts_cache: tuple | None = None
        #: default fusion depth for :meth:`run` (``1`` = exchange every
        #: step — the classic loop — or ``"auto"`` to let the measured
        #: alpha-beta-gamma model pick); see
        #: :meth:`recommend_steps_per_exchange`
        self.steps_per_exchange = steps_per_exchange
        #: what the most recent :meth:`run` actually fused: requested
        #: and effective ``steps_per_exchange``, any clamp reason, and
        #: the model's per-candidate times when auto-chosen
        self.last_fused: dict | None = None
        #: merged per-rank timeline of the most recent :meth:`run`,
        #: populated when telemetry is enabled at run time
        self.last_timeline: MergedTimeline | None = None

    def _lts_setup(self, max_rate: int) -> dict:
        """Global clustered-LTS plan for the partitioned mesh.

        Element rates are binned and 2-to-1 smoothed **globally**, then
        every *boundary* element (one touching a grid point shared
        between ranks) is clamped down to the single interface rate
        ``r_int = min(boundary rates)`` and the rates re-smoothed.  The
        clamp only lowers rates, and afterwards every node adjacent to
        a boundary element has rate at least ``r_int / 2``, so the
        re-smoothing never drags a boundary element below ``r_int`` —
        every shared grid point ends up at exactly ``r_int`` on every
        rank.  That gives one common exchange cadence: ranks trade
        interface partial sums only when the ``r_int`` level fires,
        i.e. ``r_int`` times fewer handoffs than the global-dt loop.

        Per-rank plans are built from each rank's slice of the global
        rates; they agree across ranks because a shared node's adjacent
        elements are all boundary (rate ``r_int``) and interior nodes
        see only rank-local elements.
        """
        cached = self._lts_cache
        if cached is not None and cached[0] == max_rate:
            return cached[1]
        mesh = self.mesh
        elem_dt = elem_stable_dt(mesh.elem_h, self._vp, safety=1.0)
        rates = smooth_rates(
            mesh.conn, bin_rates(elem_dt, max_rate=max_rate), mesh.nnode
        )
        shared = np.zeros(mesh.nnode, dtype=bool)
        for rp in self.dist.ranks:
            for _, gids in rp.shared_with.values():
                shared[gids] = True
        boundary = shared[mesh.conn].any(axis=1)
        r_int = 0
        if boundary.any():
            r_int = int(rates[boundary].min())
            rates[boundary] = r_int
            rates = smooth_rates(mesh.conn, rates, mesh.nnode)
            assert int(rates[boundary].min()) == r_int
        plans = [
            build_lts_plan(
                rp.local_conn, len(rp.nodes), dt=self.dt,
                rates=rates[rp.elements],
            )
            for rp in self.dist.ranks
        ]
        ctx = {
            "rates": rates,
            "r_int": r_int,
            "r_sync": max(p.max_rate for p in plans),
            "plans": plans,
            "trivial": bool(np.all(rates == 1)),
        }
        self._lts_cache = (max_rate, ctx)
        return ctx

    def run(
        self,
        force_fn: Callable[[float], np.ndarray],
        t_end: float,
        *,
        callback: Callable[[int, float, np.ndarray], None] | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 3,
        resume: bool = False,
        faults=None,
        health_interval: int = 0,
        retry: RetryPolicy | None = None,
        lts: int | bool | None = None,
        steps_per_exchange: int | str | None = None,
    ) -> np.ndarray:
        """March to ``t_end``; ``force_fn(t)`` returns the *global*
        nodal force field (each rank reads its slice, as if the sources
        had been assigned to owning ranks).  Returns the final global
        displacement, gathered deterministically (each grid point from
        its lowest co-owning rank) for verification.

        Resilience (all opt-in): with ``checkpoint_dir`` +
        ``checkpoint_every`` each rank durably snapshots its leapfrog
        restart pair (files ``rank{r}_{step}.ckpt`` in one directory);
        ``resume=True`` restarts from the last *collective* checkpoint
        (the newest step every rank holds a valid file for) instead of
        rest — bit-identical to the uninterrupted run.  On the process
        transport a :class:`~repro.parallel.transport.WorkerFailure`
        (dead, hung, or erroring rank) triggers automatic recovery when
        checkpointing is on: respawn the worker pool, rewind to the
        last collective checkpoint, retry under ``retry`` (default
        :class:`~repro.resilience.RetryPolicy`) with exponential
        backoff.  ``faults`` takes a
        :class:`~repro.resilience.FaultPlan` for deterministic fault
        injection; ``health_interval`` arms the NaN/Inf sentinel (and
        re-validates the CFL bound up front) every that many steps.

        ``lts`` (default: the constructor setting) turns on clustered
        local time stepping — see :meth:`_lts_setup`.  Ranks then
        exchange interface partial sums only at the common interface
        rate and synchronize (checkpoint / poison / health-check) only
        at multiples of the coarsest rate; ``nsteps`` is rounded up to
        the next sync boundary.  ``lts=off`` runs the global-dt loop
        bit-identically to before; a clustered run returns the state at
        the (possibly later) rounded end time.

        ``steps_per_exchange`` (default: the constructor setting) turns
        on communication-avoiding fused stepping: with ``k > 1`` each
        rank holds a ``k``-ring ghost halo and marches ``k`` steps per
        aggregated exchange, trading redundant halo recompute for a
        ``k``-fold cut in message count — bitwise-identical on the
        owned region.  ``"auto"`` lets the measured alpha-beta-gamma
        model pick ``k`` (see :meth:`recommend_steps_per_exchange`).
        ``k`` is clamped to 1 under a non-trivial ``lts`` plan (the
        clustered rates own the exchange cadence) and when no rank has
        neighbors; checkpoints land only on exchange boundaries.
        ``steps_per_exchange=1`` runs the exact per-step loop as
        before.
        """
        nsteps = int(np.ceil(t_end / self.dt))
        if health_interval:
            validate_cfl(self.dt, self.mesh.elem_h, self._vp)
        lts = self.lts if lts is None else lts
        ctx = None
        if lts:
            cap = DEFAULT_MAX_RATE if lts is True else int(lts)
            c = self._lts_setup(cap)
            if not c["trivial"]:
                ctx = c
                nsteps = -(-nsteps // c["r_sync"]) * c["r_sync"]
        spe = (
            self.steps_per_exchange
            if steps_per_exchange is None
            else steps_per_exchange
        )
        auto_times = None
        if spe == "auto":
            k_fused, auto_times = self.recommend_steps_per_exchange(
                nsteps=nsteps
            )
        else:
            k_fused = int(spe)
            if k_fused < 1:
                raise ValueError(
                    f"steps_per_exchange must be >= 1, got {k_fused}"
                )
        fallback = None
        if k_fused > 1 and ctx is not None:
            # clustered rates own the exchange cadence — fall back
            k_fused, fallback = 1, "lts"
        if k_fused > 1 and not any(
            rp.shared_with for rp in self.dist.ranks
        ):
            k_fused, fallback = 1, "no interfaces"
        if k_fused > 1 and callback is not None:
            raise ValueError(
                "callback is not supported with steps_per_exchange > 1 "
                "(nodes are only globally consistent at exchange "
                "boundaries)"
            )
        fused_ctx = None
        if k_fused > 1:
            fused_ctx = {
                "k": k_fused,
                "halos": self.dist.build_fused_halos(k_fused),
            }
        self.last_fused = {
            "steps_per_exchange": k_fused,
            "requested": spe,
            "fallback": fallback,
            "model_times": auto_times,
            "nsteps": nsteps,
        }
        with telemetry.span("dist.run") as _s:
            _s.add("nsteps", nsteps)
            _s.add("nranks", self.world.nranks)
            if ctx is not None:
                _s.add("lts_r_int", ctx["r_int"])
                _s.add("lts_r_sync", ctx["r_sync"])
            if fused_ctx is not None:
                _s.add("steps_per_exchange", k_fused)
            if hasattr(self.world, "run_spmd"):
                if callback is not None:
                    raise ValueError(
                        "callback is not supported on the process "
                        "transport (state lives in the workers); use a "
                        "SimWorld"
                    )
                return self._run_proc(
                    force_fn, nsteps,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every,
                    checkpoint_keep=checkpoint_keep,
                    resume=resume, faults=faults,
                    health_interval=health_interval, retry=retry,
                    lts_ctx=ctx, fused_ctx=fused_ctx,
                )
            if fused_ctx is not None:
                return self._run_sim_fused(
                    force_fn, nsteps, fused_ctx,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every,
                    checkpoint_keep=checkpoint_keep,
                    resume=resume, faults=faults,
                    health_interval=health_interval,
                )
            if ctx is not None:
                if callback is not None:
                    raise ValueError(
                        "callback is not supported with lts (nodes are "
                        "only globally consistent at sync boundaries)"
                    )
                return self._run_sim_lts(
                    force_fn, nsteps, ctx,
                    checkpoint_dir=checkpoint_dir,
                    checkpoint_every=checkpoint_every,
                    checkpoint_keep=checkpoint_keep,
                    resume=resume, faults=faults,
                    health_interval=health_interval,
                )
            return self._run_sim(
                force_fn, nsteps, callback,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
                checkpoint_keep=checkpoint_keep,
                resume=resume, faults=faults,
                health_interval=health_interval,
            )

    def run_shots(self, force_fns: Sequence, t_end: float) -> np.ndarray:
        """Shot-sharded ensemble run: march ``B = len(force_fns)``
        scenarios to ``t_end``, each worker advancing a contiguous
        slice of the batch over the **whole** domain with the batched
        level-3 stiffness kernel.  No per-step boundary traffic crosses
        the transport — see :func:`recommend_sharding` for when this
        beats domain decomposition.

        Each ``force_fns[b]`` follows the same convention as
        :meth:`run`'s ``force_fn`` (``t -> (nnode, 3)`` or the
        buffer-reusing ``(t, out)`` form); on the process transport
        every entry must be picklable.  Returns the final displacements
        as ``(B, nnode, 3)``; row ``b`` is bit-identical to the same
        scenario marched alone.
        """
        B = len(force_fns)
        if B == 0:
            raise ValueError("need at least one shot")
        nsteps = int(np.ceil(t_end / self.dt))
        mesh = self.mesh
        m2, inv_A, prev_coef = _hoist_update_terms(
            [self._m_global[:, None]], [self._C_global], self.dt
        )
        # trailing broadcast axis over the batch columns
        m2 = m2[0][:, :, None]
        inv_A = inv_A[0][:, :, None]
        prev_coef = prev_coef[0][:, :, None]
        slices = np.array_split(np.arange(B), self.world.nranks)

        if hasattr(self.world, "run_spmd"):
            shm, result = create_shared_array((B, mesh.nnode, 3))
            try:
                result.fill(0.0)
                payloads = [
                    {
                        "conn": mesh.conn,
                        "h": mesh.elem_h,
                        "lam": self._lam,
                        "mu": self._mu,
                        "m2": m2,
                        "inv_A": inv_A,
                        "prev_coef": prev_coef,
                        "dt": self.dt,
                        "nsteps": nsteps,
                        "shots": idx,
                        "force_fns": [force_fns[i] for i in idx],
                        "result": (shm.name, B, mesh.nnode),
                    }
                    for idx in slices
                ]
                self.last_timings = self.world.run_spmd(
                    _shot_program, payloads
                )
                out = result.copy()
            finally:
                del result  # drop the exported view before closing
                release_shared_array(shm)
            return out

        # in-process path: the identical per-slice arithmetic, one
        # worker at a time (separate operators so each slice's batch
        # workspace matches its width)
        out = np.zeros((B, mesh.nnode, 3))
        for r, idx in enumerate(slices):
            if len(idx) == 0:
                continue
            op = ElasticOperator(
                mesh.conn, mesh.elem_h, self._lam, self._mu, mesh.nnode
            )
            stats = self.world.stats[r]

            def add_flops(n, stats=stats):
                stats.flops += int(n)

            u = _march_shot_slice(
                op, m2, inv_A, prev_coef,
                [force_fns[i] for i in idx],
                mesh.nnode, self.dt, nsteps, add_flops=add_flops,
            )
            out[idx] = np.moveaxis(u, 2, 0)
        return out

    # ------------------------------------------------- in-process path

    def _run_sim(self, force_fn, nsteps, callback, *,
                 checkpoint_dir=None, checkpoint_every=0,
                 checkpoint_keep=3, resume=False, faults=None,
                 health_interval=0):
        world = self.world
        dist = self.dist
        dt = self.dt
        dt2 = dt * dt
        ranks = dist.ranks
        # hoisted per-rank invariants and preallocated buffers: the
        # step loop is fully in-place (matching the serial solver)
        m2, inv_A, prev_coef = _hoist_update_terms(
            self.m_local, self.C_local, dt
        )
        u_prev = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        u = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        u_next = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        Ku = [np.empty((len(rp.nodes), 3)) for rp in ranks]
        tmp = [np.empty((len(rp.nodes), 3)) for rp in ranks]
        comms = world.comms()
        force = _make_force_caller(force_fn, self.mesh.nnode)
        # per-rank timelines (telemetry only): each rank's share of the
        # globally ordered supersteps is timed individually, so the
        # merged view is structurally equivalent to the process
        # transport's (same ranks, steps, phases; wall times differ —
        # here the "overlap" phases are serialized on one core)
        tls = (
            [
                RankTimeline(
                    r, nsteps,
                    trace_id=telemetry.get_trace_context(),
                )
                for r in range(world.nranks)
            ]
            if telemetry.enabled()
            else None
        )
        durs = [tl.durations for tl in tls] if tls is not None else None
        clock = time.perf_counter

        # per-rank durable checkpoints: same on-disk layout as the
        # process path, so runs resume across transports
        mgrs = None
        if checkpoint_dir:
            mgrs = [
                CheckpointManager(
                    checkpoint_dir, checkpoint_every,
                    keep=checkpoint_keep, prefix=f"rank{r}",
                )
                for r in range(world.nranks)
            ]
        k0 = 0
        if resume and checkpoint_dir:
            step = collective_latest_step(checkpoint_dir, world.nranks)
            if step is not None:
                for r in range(world.nranks):
                    ck = mgrs[r].load_step(step)
                    u_prev[r][:] = ck.arrays["u_prev"]
                    u[r][:] = ck.arrays["u"]
                    k0 = int(ck.meta["next_k"])

        for k in range(k0, nsteps):
            t = k * dt
            b_global = force(t)
            # phase 1: interface elements -> boundary partials complete
            for r, rp in enumerate(ranks):
                if durs is not None:
                    _t = clock()
                dist.ops[r].matvec_interface(u[r], Ku[r])
                world.stats[r].flops += dist.ops[r].flops_per_matvec
                if durs is not None:
                    durs[r][k, 0] = clock() - _t
            # phase 2: post all boundary sends
            for r, rp in enumerate(ranks):
                if durs is not None:
                    _t = clock()
                for o, (loc, _) in rp.shared_with.items():
                    comms[r].Send(Ku[r][loc], o, tag=r)
                if durs is not None:
                    durs[r][k, 1] = clock() - _t
            # phase 3: interior elements (the work the exchange hides
            # behind on the process transport)
            for r, rp in enumerate(ranks):
                if durs is not None:
                    _t = clock()
                dist.ops[r].matvec_interior_acc(u[r], Ku[r])
                if durs is not None:
                    durs[r][k, 2] = clock() - _t
            # phase 4: receive and accumulate partial sums
            for r, rp in enumerate(ranks):
                if durs is not None:
                    _t = clock()
                for o, (loc, _) in rp.shared_with.items():
                    Ku[r][loc] += comms[r].Recv(o, tag=o)
                    world.stats[r].flops += 3 * len(loc)
                if rp.shared_with:
                    world.stats[r].exchanges += 1
                if durs is not None:
                    durs[r][k, 3] = clock() - _t
            # phase 5: local update (nodal data now consistent)
            for r, rp in enumerate(ranks):
                if durs is not None:
                    _t = clock()
                b = b_global[rp.nodes] if b_global is not None else None
                _local_update(
                    Ku[r], tmp[r], u[r], u_prev[r], u_next[r],
                    m2[r], inv_A[r], prev_coef[r], b, dt2,
                )
                u_prev[r], u[r], u_next[r] = u[r], u_next[r], u_prev[r]
                world.stats[r].flops += 15 * len(rp.nodes)
                if durs is not None:
                    durs[r][k, 4] = clock() - _t
            if faults is not None:
                # in-process: only state poisoning applies (kill/send
                # faults exercise the worker-process machinery)
                for r in range(world.nranks):
                    faults.poison_state(r, k, u[r])
            if health_interval and should_check(k, nsteps, health_interval):
                for r in range(world.nranks):
                    check_finite(u[r], step=k, rank=r, field="u")
            if mgrs is not None and mgrs[0].due(k):
                for r in range(world.nranks):
                    mgrs[r].save(
                        k,
                        {"u_prev": u_prev[r], "u": u[r]},
                        {"next_k": k + 1},
                    )
            if callback is not None:
                callback(k, t, u)

        if tls is not None:
            self.last_timeline = MergedTimeline(tls)
        return dist.gather_field(u)

    def _run_sim_lts(self, force_fn, nsteps, ctx, *,
                     checkpoint_dir=None, checkpoint_every=0,
                     checkpoint_keep=3, resume=False, faults=None,
                     health_interval=0):
        """In-process clustered-LTS march: the identical per-rank
        arithmetic as :func:`_rank_program_lts`, executed one rank at a
        time with the interface exchange staged across ranks.

        Per fine index, each rank first fires its levels **coarser**
        than the interface rate, then — when the interface level is due
        — all ranks run the four exchange phases (interface matvec /
        send / interior / receive-accumulate-update) in the same global
        order as the global-dt path, then each rank fires its **finer**
        levels.  That reproduces every rank's coarsest-first firing
        order exactly, so trajectories are bit-identical to the process
        transport.
        """
        world = self.world
        dist = self.dist
        mesh = self.mesh
        dt = self.dt
        ranks = dist.ranks
        plans = ctx["plans"]
        r_int, r_sync = ctx["r_int"], ctx["r_sync"]
        levels = [
            _lts_rank_levels(
                rp.local_conn, mesh.elem_h[rp.elements],
                self._lam[rp.elements], self._mu[rp.elements],
                len(rp.nodes), plans[r],
                self.m_local[r], self.C_local[r],
                dt, r_int, rp.n_iface_elems,
            )
            for r, rp in enumerate(ranks)
        ]
        # each rank's levels split around its interface-rate level (the
        # coarsest-first order is: pre -> interface -> post)
        pre = [[lv for lv in ls if lv["rate"] > r_int] for ls in levels]
        ifc = [
            next((lv for lv in ls if lv["rate"] == r_int), None)
            for ls in levels
        ] if r_int else [None] * len(levels)
        post = [[lv for lv in ls if lv["rate"] < r_int] for ls in levels]
        u_prev = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        u = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        Ku = [np.empty((len(rp.nodes), 3)) for rp in ranks]
        comms = world.comms()
        force = _make_force_caller(force_fn, mesh.nnode)
        tls = (
            [
                RankTimeline(
                    r, nsteps,
                    trace_id=telemetry.get_trace_context(),
                )
                for r in range(world.nranks)
            ]
            if telemetry.enabled()
            else None
        )
        durs = [tl.durations for tl in tls] if tls is not None else None
        clock = time.perf_counter

        mgrs = None
        if checkpoint_dir:
            mgrs = [
                CheckpointManager(
                    checkpoint_dir, checkpoint_every,
                    keep=checkpoint_keep, prefix=f"rank{r}",
                )
                for r in range(world.nranks)
            ]
        k0 = 0
        if resume and checkpoint_dir:
            step = collective_latest_step(checkpoint_dir, world.nranks)
            if step is not None:
                for r in range(world.nranks):
                    ck = mgrs[r].load_step(step)
                    u_prev[r][:] = ck.arrays["u_prev"]
                    u[r][:] = ck.arrays["u"]
                    k0 = int(ck.meta["next_k"])
                if k0 % r_sync:
                    raise ValueError(
                        f"LTS resume index {k0} is not a sync boundary "
                        f"(sync rate {r_sync})"
                    )
        last_sync_saved = k0

        def fire_local(r, lev, j, b):
            if durs is not None:
                _t = clock()
            lev["fired"] += 1
            sv = _lts_interp_in(lev, u[r], u_prev[r], j)
            lev["op"].matvec(u[r], out=Ku[r])
            world.stats[r].flops += lev["op"].flops_per_matvec
            _lts_interp_out(lev, u[r], sv)
            _lts_level_update(lev, u[r], u_prev[r], Ku[r], b)
            world.stats[r].flops += 15 * len(lev["own"])
            if durs is not None:
                durs[r][j, 0] += clock() - _t

        r_min = min(p.min_rate for p in plans)
        for j in range(k0, nsteps, r_min):
            t = j * dt
            b_global = force(t)
            bs = [
                b_global[rp.nodes] if b_global is not None else None
                for rp in ranks
            ]
            # coarser-than-interface clusters: purely rank-local
            for r in range(len(ranks)):
                for lev in pre[r]:
                    if j % lev["rate"] == 0:
                        fire_local(r, lev, j, bs[r])
            if r_int and j % r_int == 0:
                # interface-rate clusters fire in the same four global
                # phases as the global-dt loop (exchange overlap)
                sv = [None] * len(ranks)
                for r, rp in enumerate(ranks):
                    lev = ifc[r]
                    if lev is None:
                        continue
                    if not lev["is_iface"]:  # neighborless rank
                        fire_local(r, lev, j, bs[r])
                        continue
                    lev["fired"] += 1
                    if durs is not None:
                        _t = clock()
                    sv[r] = _lts_interp_in(lev, u[r], u_prev[r], j)
                    lev["op"].matvec_interface(u[r], Ku[r])
                    world.stats[r].flops += lev["op"].flops_per_matvec
                    if durs is not None:
                        durs[r][j, 0] += clock() - _t
                for r, rp in enumerate(ranks):
                    if ifc[r] is None or not ifc[r]["is_iface"]:
                        continue
                    if durs is not None:
                        _t = clock()
                    for o, (loc, _) in rp.shared_with.items():
                        comms[r].Send(Ku[r][loc], o, tag=r)
                    if durs is not None:
                        durs[r][j, 1] = clock() - _t
                for r, rp in enumerate(ranks):
                    lev = ifc[r]
                    if lev is None or not lev["is_iface"]:
                        continue
                    if durs is not None:
                        _t = clock()
                    lev["op"].matvec_interior_acc(u[r], Ku[r])
                    _lts_interp_out(lev, u[r], sv[r])
                    if durs is not None:
                        durs[r][j, 2] = clock() - _t
                for r, rp in enumerate(ranks):
                    lev = ifc[r]
                    if lev is None or not lev["is_iface"]:
                        continue
                    if durs is not None:
                        _t = clock()
                    for o, (loc, _) in rp.shared_with.items():
                        Ku[r][loc] += comms[r].Recv(o, tag=o)
                        world.stats[r].flops += 3 * len(loc)
                    if rp.shared_with:
                        world.stats[r].exchanges += 1
                    _lts_level_update(lev, u[r], u_prev[r], Ku[r], bs[r])
                    world.stats[r].flops += 15 * len(lev["own"])
                    if durs is not None:
                        durs[r][j, 3] = clock() - _t
            # finer-than-interface clusters: purely rank-local
            for r in range(len(ranks)):
                for lev in post[r]:
                    if j % lev["rate"] == 0:
                        fire_local(r, lev, j, bs[r])
            s = j + r_min
            if s % r_sync == 0:  # sync: every node holds u(s * dt)
                if faults is not None:
                    for r in range(world.nranks):
                        faults.poison_state(r, s - 1, u[r])
                if health_interval and should_check(
                    s - 1, nsteps, health_interval
                ):
                    for r in range(world.nranks):
                        check_finite(u[r], step=s - 1, rank=r, field="u")
                if (
                    mgrs is not None
                    and checkpoint_every > 0
                    and s // checkpoint_every
                    > last_sync_saved // checkpoint_every
                ):
                    for r in range(world.nranks):
                        mgrs[r].save(
                            s - 1,
                            {"u_prev": u_prev[r], "u": u[r]},
                            {"next_k": s, "lts_rate": r_sync},
                        )
                    last_sync_saved = s

        if tls is not None:
            self.last_timeline = MergedTimeline(tls)
        return dist.gather_field(u)

    # ------------------------------------- communication-avoiding path

    def _fused_payload(self, halo) -> dict:
        """Transport-ready description of one rank's k-deep halo: the
        perspective operators' inputs (owner-ordered element subsets,
        material and mass/damping slices), the inter-perspective
        partial-sum adds, and the window-refresh send lists.  Shared by
        the in-process and worker-process paths; everything is a plain
        numpy array, so the dict pickles straight into a worker."""
        mesh = self.mesh
        persp = []
        for o in sorted(halo.perspectives):
            pp = halo.perspectives[o]
            persp.append(
                {
                    "owner": o,
                    "own": o == halo.rank,
                    "conn": pp.conn,
                    "h": mesh.elem_h[pp.elements_global],
                    "lam": self._lam[pp.elements_global],
                    "mu": self._mu[pp.elements_global],
                    "nloc": len(pp.nodes_global),
                    "n_iface": pp.n_iface,
                    "m": self._m_global[pp.nodes_global][:, None],
                    "C": self._C_global[pp.nodes_global],
                    "gnodes": pp.nodes_global,
                }
            )
        return {
            "perspectives": persp,
            "adds": halo.adds,
            "sends": list(halo.sends.items()),
        }

    def recommend_steps_per_exchange(
        self,
        *,
        machine=None,
        candidates: Sequence[int] = (1, 2, 4, 8),
        nsteps: int | None = None,
    ) -> tuple[int, dict[int, float]]:
        """Model-pick the fusion depth for this partition on this world.

        With no ``machine`` given, one is calibrated in place: the
        sustained flop rate from timing the heaviest rank's real
        stiffness matvec, and — on a process transport with >= 2 ranks
        — alpha/beta/gamma from a quick
        :func:`~repro.parallel.transport.measure_transport` burst
        ping-pong (whose traffic lands in ``world.stats``; pass an
        explicit machine when exact accounting matters).  In-process
        mailboxes have no real latency, so a :class:`SimWorld` gets a
        near-free communication model and the chooser keeps ``k=1``.

        Returns ``(best_k, {k: modeled_step_seconds})`` from
        :func:`~repro.parallel.perfmodel.choose_steps_per_exchange`.
        """
        from repro.parallel.perfmodel import (
            MachineModel,
            choose_steps_per_exchange,
            machine_from_measurements,
        )

        if machine is None:
            ops = self.dist.ops
            r = max(
                range(len(ops)), key=lambda i: ops[i].flops_per_matvec
            )
            op = ops[r]
            n = len(self.dist.ranks[r].nodes)
            u = np.zeros((n, 3))
            Ku = np.empty((n, 3))
            op.matvec(u, out=Ku)  # warm the kernel workspace
            reps = 3
            t0 = time.perf_counter()
            for _ in range(reps):
                op.matvec(u, out=Ku)
            per_mv = (time.perf_counter() - t0) / reps
            flop_rate = op.flops_per_matvec / max(per_mv, 1e-12)
            if hasattr(self.world, "run_spmd") and self.world.nranks >= 2:
                from repro.parallel.transport import calibrate_transport

                # memoized process-wide: repeat "auto" runs over the
                # same transport flavour reuse one burst ping-pong
                meas = calibrate_transport(
                    self.world, sizes=(256, 4096, 32768), repeats=10
                )
                machine = machine_from_measurements(
                    meas,
                    flop_rate=flop_rate,
                    name="measured proc transport",
                )
            else:
                machine = MachineModel(
                    name="in-process sim transport",
                    flop_rate=flop_rate,
                    latency=1e-9,
                    bandwidth=1e12,
                )
        return choose_steps_per_exchange(
            self.dist, machine, candidates=candidates, nsteps=nsteps
        )

    def _run_sim_fused(self, force_fn, nsteps, fused_ctx, *,
                       checkpoint_dir=None, checkpoint_every=0,
                       checkpoint_keep=3, resume=False, faults=None,
                       health_interval=0):
        """In-process communication-avoiding march: the identical
        per-rank arithmetic as :func:`_rank_program_fused`, executed
        one rank at a time with the window refresh staged across ranks
        (every rank posts its sends before any rank receives — each
        rank's window march depends only on its own refreshed state, so
        the rank-at-a-time schedule is bit-identical to the concurrent
        process transport)."""
        world = self.world
        dist = self.dist
        dt = self.dt
        k = fused_ctx["k"]
        states = [
            _fused_build_state(self._fused_payload(h), dt)
            for h in fused_ctx["halos"].halos
        ]
        comms = world.comms()
        force = _make_force_caller(force_fn, self.mesh.nnode)
        tls = (
            [
                RankTimeline(
                    r, nsteps,
                    trace_id=telemetry.get_trace_context(),
                )
                for r in range(world.nranks)
            ]
            if telemetry.enabled()
            else None
        )
        durs = [tl.durations for tl in tls] if tls is not None else None
        clock = time.perf_counter

        mgrs = None
        if checkpoint_dir:
            mgrs = [
                CheckpointManager(
                    checkpoint_dir, checkpoint_every,
                    keep=checkpoint_keep, prefix=f"rank{r}",
                )
                for r in range(world.nranks)
            ]
        k0 = 0
        if resume and checkpoint_dir:
            step = collective_latest_step(checkpoint_dir, world.nranks)
            if step is not None:
                for r in range(world.nranks):
                    ck = mgrs[r].load_step(step)
                    own = states[r]["own"]
                    own["u_prev"][:] = ck.arrays["u_prev"]
                    own["u"][:] = ck.arrays["u"]
                    k0 = int(ck.meta["next_k"])
                if k0 % k and k0 != nsteps:
                    raise ValueError(
                        f"fused resume index {k0} is not an exchange "
                        f"boundary (steps_per_exchange {k})"
                    )
        last_saved = k0

        for s0 in range(k0, nsteps, k):
            s_end = min(s0 + k, nsteps)
            # phase 1: every rank posts its window-refresh messages
            for r, st in enumerate(states):
                if durs is not None:
                    _t = clock()
                own = st["own"]
                for dest, idx, sbuf in st["sends"]:
                    np.take(own["u"], idx, axis=0, out=sbuf[0])
                    np.take(own["u_prev"], idx, axis=0, out=sbuf[1])
                    comms[r].Send(sbuf, dest, tag=r)
                if durs is not None:
                    durs[r][s0, 1] = clock() - _t
            # phase 2: each rank refreshes its ghosts and marches its
            # whole window locally
            for r, st in enumerate(states):
                if durs is not None:
                    _t = clock()
                for o, rbuf in st["recvs"]:
                    comms[r].Recv(o, tag=o, out=rbuf)
                    q = st["persps"][o]
                    q["u"][:] = rbuf[0]
                    q["u_prev"][:] = rbuf[1]
                if st["sends"] or st["recvs"]:
                    world.stats[r].exchanges += 1
                if durs is not None:
                    durs[r][s0, 3] = clock() - _t
                for s in range(s0, s_end):
                    if durs is not None:
                        _t = clock()
                    b_global = force(s * dt)
                    _fused_march_step(st, b_global, comms[r].add_flops)
                    if durs is not None:
                        durs[r][s, 0] += clock() - _t
            # window boundary: own states hold x^{s_end} exactly
            if faults is not None:
                for r in range(world.nranks):
                    faults.poison_state(
                        r, s_end - 1, states[r]["own"]["u"]
                    )
            if health_interval and should_check(
                s_end - 1, nsteps, health_interval
            ):
                for r in range(world.nranks):
                    check_finite(
                        states[r]["own"]["u"],
                        step=s_end - 1, rank=r, field="u",
                    )
            if (
                mgrs is not None
                and checkpoint_every > 0
                and s_end // checkpoint_every
                > last_saved // checkpoint_every
            ):
                for r in range(world.nranks):
                    own = states[r]["own"]
                    mgrs[r].save(
                        s_end - 1,
                        {"u_prev": own["u_prev"], "u": own["u"]},
                        {"next_k": s_end, "fused_k": k},
                    )
                last_saved = s_end

        if tls is not None:
            self.last_timeline = MergedTimeline(tls)
        return dist.gather_field([st["own"]["u"] for st in states])

    # --------------------------------------------- worker-process path

    def _run_proc(self, force_fn, nsteps, *, checkpoint_dir=None,
                  checkpoint_every=0, checkpoint_keep=3, resume=False,
                  faults=None, health_interval=0, retry=None,
                  lts_ctx=None, fused_ctx=None):
        world = self.world
        dist = self.dist
        mesh = self.mesh
        if fused_ctx is not None:
            # fused windows replace per-step interface messages with
            # one aggregated [u; u_prev] refresh per directed halo pair
            max_msg = fused_ctx["halos"].max_message_bytes()
            kind = "window-refresh"
        else:
            max_msg = max(
                (
                    24 * len(loc)
                    for rp in dist.ranks
                    for (loc, _) in rp.shared_with.values()
                ),
                default=0,
            )
            kind = "interface"
        if max_msg > world.slot_bytes:
            raise ValueError(
                f"largest {kind} message is {max_msg} bytes but the "
                f"ProcWorld channels hold {world.slot_bytes}; rebuild the "
                f"world with slot_bytes >= {max_msg}"
            )
        m2, inv_A, prev_coef = _hoist_update_terms(
            self.m_local, self.C_local, self.dt
        )
        want_timeline = telemetry.enabled()
        recoverable = bool(checkpoint_dir) and checkpoint_every > 0
        retry = retry if retry is not None else RetryPolicy()
        resume_step = None
        if resume and checkpoint_dir:
            resume_step = collective_latest_step(
                checkpoint_dir, world.nranks
            )
        shm, result = create_shared_array((mesh.nnode, 3))
        try:
            attempt = 0
            while True:
                result.fill(0.0)
                payloads = []
                for r, rp in enumerate(dist.ranks):
                    pl = {
                        "dt": self.dt,
                        "nsteps": nsteps,
                        "force_fn": force_fn,
                        "gather_nodes": rp.gather_nodes,
                        "gather_local": rp.gather_local,
                        "result": (shm.name, mesh.nnode),
                        "timeline": want_timeline,
                        "ckpt_dir": checkpoint_dir,
                        "ckpt_every": checkpoint_every,
                        "ckpt_keep": checkpoint_keep,
                        "resume_step": resume_step,
                        "faults": faults,
                        "health_interval": health_interval,
                    }
                    if fused_ctx is not None:
                        # perspectives carry their own connectivity and
                        # coefficient slices
                        pl.update(
                            self._fused_payload(
                                fused_ctx["halos"].halos[r]
                            ),
                            k=fused_ctx["k"],
                        )
                        payloads.append(pl)
                        continue
                    pl.update(
                        conn=rp.local_conn,
                        h=mesh.elem_h[rp.elements],
                        lam=self._lam[rp.elements],
                        mu=self._mu[rp.elements],
                        nloc=len(rp.nodes),
                        n_iface=rp.n_iface_elems,
                        neighbors=[
                            (o, loc)
                            for o, (loc, _) in rp.shared_with.items()
                        ],
                        gnodes=rp.nodes,
                    )
                    if lts_ctx is None:
                        pl.update(
                            m2=m2[r], inv_A=inv_A[r],
                            prev_coef=prev_coef[r],
                        )
                    else:
                        # the LTS program hoists per-level coefficients
                        # itself, from the raw mass/damping slices
                        pl.update(
                            m=self.m_local[r], C=self.C_local[r],
                            rates=lts_ctx["rates"][rp.elements],
                            r_int=lts_ctx["r_int"],
                            r_sync=lts_ctx["r_sync"],
                        )
                    payloads.append(pl)
                if fused_ctx is not None:
                    program = _rank_program_fused
                elif lts_ctx is not None:
                    program = _rank_program_lts
                else:
                    program = _rank_program
                try:
                    timings = world.run_spmd(program, payloads)
                    break
                except WorkerFailure as wf:
                    telemetry.count("resilience.worker_failures")
                    # black box first: the flight recorder snapshot is
                    # most useful before respawn/rewind mutate state
                    telemetry.flight_dump(f"worker_failure: {wf}")
                    if not recoverable or attempt >= retry.max_retries:
                        raise
                    attempt += 1
                    t_fail = time.perf_counter()
                    # respawn unconditionally: even a program-level
                    # failure leaves the channels with in-flight
                    # residue, so the pool gets fresh ones
                    world.respawn()
                    # injected faults are keyed on the attempt, so a
                    # deterministic kill does not re-fire on retry
                    faults = faults.retried() if faults is not None else None
                    retry.wait(attempt)
                    resume_step = collective_latest_step(
                        checkpoint_dir, world.nranks
                    )
                    tr = telemetry.current_tracer()
                    if tr is not None:
                        # annotate the active request's trace with the
                        # recovery window so a fault-injected request
                        # still stitches into one complete trace
                        tr.record_event(
                            ("dist.run", "recovery"),
                            t_fail,
                            time.perf_counter() - t_fail,
                            counters={
                                "attempt": 1,
                                "resume_step": resume_step,
                            },
                        )
            self.last_timings = timings
            if want_timeline:
                self.last_timeline = MergedTimeline(
                    [
                        RankTimeline.from_payload(t["timeline"])
                        for t in timings
                    ]
                )
            out = result.copy()
        finally:
            del result  # drop the exported view before closing
            release_shared_array(shm)
        return out
