"""Distributed explicit wave propagation over simulated MPI.

The paper's solver is bulk-synchronous: per time step each rank applies
its local element operator and exchanges interface partial sums.  This
module executes that loop for real — per-rank state vectors, per-step
ghost exchanges through :class:`repro.parallel.simcomm.SimComm`
mailboxes — and is verified to reproduce the serial
:class:`repro.solver.ElasticWaveSolver` trajectory bit-for-bit on
conforming meshes (see tests).

Scope: lumped mass, Lysmer absorbing damping (the ``c1`` coupling and
hanging-node projection would add further interface reductions; the
accounting for those is already covered by the operator-level layer).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.fem.assembly import lumped_mass
from repro.mesh.hexmesh import HexMesh
from repro.parallel.decomposition import DistributedElasticOperator
from repro.parallel.simcomm import SimWorld
from repro.physics.cfl import stable_timestep
from repro.physics.elastic import lame_from_velocities
from repro.physics.stacey import stacey_boundary_matrices, stacey_coefficients
from repro.solver.wave_solver import DEFAULT_ABSORBING


class DistributedWaveSolver:
    """SPMD central-difference elastodynamics on an element partition.

    Each rank holds copies of the grid points its elements touch; nodal
    quantities that must be globally consistent (mass, boundary
    damping) are interface-summed once at setup, and the stiffness
    partial sums are exchanged every step.
    """

    def __init__(
        self,
        mesh: HexMesh,
        material,
        parts: np.ndarray,
        world: SimWorld,
        *,
        absorbing: Sequence[tuple[int, int]] = DEFAULT_ABSORBING,
        dt: float | None = None,
        cfl_safety: float = 0.5,
    ):
        if len(np.unique(mesh.elem_level)) > 1:
            raise ValueError(
                "DistributedWaveSolver requires a conforming mesh "
                "(hanging-node projection is not distributed)"
            )
        self.mesh = mesh
        self.world = world
        vs, vp, rho = material.query(mesh.elem_centers)
        lam, mu = lame_from_velocities(vs, vp, rho)
        self.dist = DistributedElasticOperator(mesh, lam, mu, parts, world)
        self.dt = dt if dt is not None else stable_timestep(
            mesh.elem_h, vp, safety=cfl_safety
        )

        # globally consistent nodal mass and boundary damping, sliced
        # per rank (setup-time exchange, accounted once)
        m_global = lumped_mass(mesh.conn, mesh.elem_h, rho, mesh.nnode)
        faces = []
        for axis, side in absorbing:
            idx, fnodes = mesh.boundary_faces(axis, side)
            coeffs = stacey_coefficients(lam[idx], mu[idx], rho[idx])
            faces.append((fnodes, mesh.elem_h[idx], axis, side, coeffs))
        C_global, _ = stacey_boundary_matrices(
            faces, mesh.nnode, include_c1=False
        )
        self.m_local = [m_global[rp.nodes][:, None] for rp in self.dist.ranks]
        self.C_local = [C_global[rp.nodes] for rp in self.dist.ranks]
        for r, rp in enumerate(self.dist.ranks):
            # account the setup exchange (mass + damping on interfaces)
            for o, (loc, _) in rp.shared_with.items():
                world.stats[r].messages_sent += 1
                world.stats[r].bytes_sent += 8 * 4 * len(loc)

    def run(
        self,
        force_fn: Callable[[float], np.ndarray],
        t_end: float,
        *,
        callback: Callable[[int, float, np.ndarray], None] | None = None,
    ) -> np.ndarray:
        """March to ``t_end``; ``force_fn(t)`` returns the *global*
        nodal force field (each rank reads its slice, as if the sources
        had been assigned to owning ranks).  Returns the final global
        displacement, gathered for verification."""
        world = self.world
        dist = self.dist
        dt = self.dt
        dt2 = dt * dt
        nsteps = int(np.ceil(t_end / dt))
        ranks = dist.ranks
        # hoisted per-rank invariants and preallocated buffers: the
        # step loop is fully in-place (matching the serial solver)
        m2 = [2.0 * m for m in self.m_local]
        inv_A = [
            1.0 / (m + 0.5 * dt * C)
            for m, C in zip(self.m_local, self.C_local)
        ]
        prev_coef = [
            -m + 0.5 * dt * C
            for m, C in zip(self.m_local, self.C_local)
        ]
        u_prev = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        u = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        u_next = [np.zeros((len(rp.nodes), 3)) for rp in ranks]
        Ku = [np.empty((len(rp.nodes), 3)) for rp in ranks]
        tmp = [np.empty((len(rp.nodes), 3)) for rp in ranks]
        comms = world.comms()

        for k in range(nsteps):
            t = k * dt
            b_global = force_fn(t)
            # superstep 1: local stiffness products
            for r, rp in enumerate(ranks):
                dist.ops[r].matvec(u[r], out=Ku[r])
                world.stats[r].flops += dist.ops[r].flops_per_matvec
            # superstep 2: interface exchange of partial sums
            for r, rp in enumerate(ranks):
                for o, (loc, _) in rp.shared_with.items():
                    comms[r].send(Ku[r][loc], o, tag=r)
            for r, rp in enumerate(ranks):
                for o, (loc, _) in rp.shared_with.items():
                    Ku[r][loc] += comms[r].recv(o, tag=o)
                    world.stats[r].flops += 3 * len(loc)
            # superstep 3: local update (nodal data already consistent)
            for r, rp in enumerate(ranks):
                rhs, t_r = Ku[r], tmp[r]
                np.multiply(rhs, -dt2, out=rhs)
                np.multiply(m2[r], u[r], out=t_r)
                np.add(rhs, t_r, out=rhs)
                np.multiply(prev_coef[r], u_prev[r], out=t_r)
                np.add(rhs, t_r, out=rhs)
                if b_global is not None:
                    np.multiply(b_global[rp.nodes], dt2, out=t_r)
                    np.add(rhs, t_r, out=rhs)
                np.multiply(rhs, inv_A[r], out=u_next[r])
                u_prev[r], u[r], u_next[r] = u[r], u_next[r], u_prev[r]
                world.stats[r].flops += 15 * len(rp.nodes)
            if callback is not None:
                callback(k, t, u)

        out = np.zeros((self.mesh.nnode, 3))
        for r, rp in enumerate(ranks):
            out[rp.nodes] = u[r]
        return out
