"""Distributed element-based matvec over a pluggable communicator.

Elements are partitioned across ranks (ParMETIS in the paper, RCB
here); each rank owns its elements and a local copy of every grid point
they touch.  A stiffness application is then

1. local gather / dense element products / local scatter (the serial
   :class:`repro.fem.assembly.ElasticOperator` on the rank's elements);
2. **interface exchange**: grid points shared between ranks hold only
   partial sums, so each rank sends its partials on shared nodes to the
   co-owning ranks and accumulates what it receives.

To let step 2 hide behind step 1 — the classic bulk-synchronous
comm/compute overlap the paper's machine model assumes — each rank's
elements are ordered **interface first**: the elements touching any
shared grid point form a prefix, the per-rank operator is built with
the matching ``split_elems``, and its planned-CSR scatter is split
along the same boundary (:meth:`repro.backend.sparse_ops.ScatterPlan.
split`).  A time step then applies the interface elements, ships the
boundary partial sums, and runs the interior elements while the
messages are in flight.

The exchange executes through :class:`repro.parallel.simcomm.SimComm`
endpoints over either transport (in-process mailboxes or the real
shared-memory process transport), so message counts and byte volumes
are measured, not estimated — they drive the Table 2.1 machine model.
The assembled result is verified against the serial operator in the
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.sparse_ops import ScatterPlan
from repro.fem.assembly import ElasticOperator
from repro.mesh.hexmesh import HexMesh


@dataclass
class RankPartition:
    """One rank's share of the mesh.

    ``elements``/``local_conn`` are ordered interface-first: the first
    ``n_iface_elems`` entries touch at least one shared grid point.
    ``gather_nodes``/``gather_local`` name the grid points this rank
    contributes to a global gather (its nodes whose lowest co-owner it
    is), so gathers are deterministic under concurrent writers.
    """

    elements: np.ndarray  # global element ids (interface first)
    nodes: np.ndarray  # global node ids owned as local copies (sorted)
    local_conn: np.ndarray  # connectivity renumbered into local nodes
    shared_with: dict  # neighbor rank -> (local idx of shared nodes,
    #                                      matching global ids)
    n_iface_elems: int  # leading elements touching shared nodes
    gather_nodes: np.ndarray  # global ids this rank gathers
    gather_local: np.ndarray  # their local indices


@dataclass
class HaloPerspective:
    """One owner rank's sub-domain replica inside another rank's halo.

    A *perspective* is a miniature copy of rank ``owner``'s partition
    restricted to the halo elements ``owner`` contributes: the element
    subset keeps the owner's **local element order** (interface first,
    then interior — ascending owner-local index) and the node subset
    keeps the owner's ascending local node order, so every per-node
    partial sum a perspective computes accumulates contributions in
    exactly the sequence the owner's own split matvec produces.  That
    ordering is what makes the fused multi-step march bitwise-identical
    to the one-step-per-exchange loop on the owned region.
    """

    owner: int
    elements: np.ndarray  # owner-local element indices, ascending
    nodes: np.ndarray  # owner-local node indices, ascending
    conn: np.ndarray  # sub-connectivity renumbered into ``nodes``
    elements_global: np.ndarray  # global element ids (material slices)
    nodes_global: np.ndarray  # global node ids, sorted (force slices)
    n_iface: int  # owner's interface split (own perspective only)


@dataclass
class FusedHalo:
    """One rank's complete k-deep ghost state for fused stepping.

    ``perspectives`` maps every rank owning at least one halo element
    (including this rank itself) to its :class:`HaloPerspective`.
    ``adds`` lists the intra-halo partial-sum exchanges that replace
    the per-step transport messages: entry ``(dst, src, dst_idx,
    src_idx)`` adds perspective ``src``'s boundary partials (at
    ``src``-perspective node positions ``src_idx``) into perspective
    ``dst`` (at positions ``dst_idx``), grouped by ``dst`` and ordered
    by ascending ``src`` within each group — the same neighbor order
    the unfused receive loop uses.  ``sources`` are the halo owners a
    refresh message is received from at each window start; ``sends``
    maps each rank that holds *this* rank in its halo to the local node
    indices it needs shipped.
    """

    rank: int
    depth: int
    perspectives: dict  # owner -> HaloPerspective, ascending keys
    adds: list  # (dst, src, dst_idx, src_idx)
    sources: list  # halo owners != rank, ascending
    sends: dict = field(default_factory=dict)  # dest -> own-local idx


@dataclass
class FusedHaloSet:
    """All ranks' :class:`FusedHalo` structures for one depth ``k``."""

    depth: int
    halos: list  # per-rank FusedHalo

    def max_message_bytes(self) -> int:
        """Largest window-refresh payload (``[u; u_prev]`` stacked at
        the requested nodes): bounds the transport slot size."""
        return max(
            (
                2 * 3 * 8 * len(idx)
                for h in self.halos
                for idx in h.sends.values()
            ),
            default=0,
        )

    def profile(self, per_elem_flops: float) -> list[dict]:
        """Per-rank cost profile of ONE fused inner step plus its
        amortized window exchange — pure accounting for the
        alpha-beta-gamma model (no execution)."""
        out = []
        for h in self.halos:
            flops = 0.0
            for p in h.perspectives.values():
                flops += per_elem_flops * len(p.elements)
                flops += 15 * len(p.nodes)
            flops += sum(3 * len(di) for (_, _, di, _) in h.adds)
            out.append(
                {
                    "flops": flops,
                    "partners": len(h.sends),
                    "bytes": sum(
                        2 * 3 * 8 * len(idx) for idx in h.sends.values()
                    ),
                    "halo_elements": sum(
                        len(p.elements) for p in h.perspectives.values()
                    ),
                }
            )
        return out


class DistributedElasticOperator:
    """Element partition + per-rank operators + ghost exchange."""

    def __init__(
        self,
        mesh: HexMesh,
        lam: np.ndarray,
        mu: np.ndarray,
        parts: np.ndarray,
        world,
    ):
        self.mesh = mesh
        self.world = world
        nranks = world.nranks
        parts = np.asarray(parts)
        if parts.max() >= nranks:
            raise ValueError("partition refers to more ranks than the world")
        self.parts = parts
        lam = np.asarray(lam)
        mu = np.asarray(mu)
        self.ranks: list[RankPartition] = []
        self.ops: list[ElasticOperator] = []
        self._fused_cache: dict[int, FusedHaloSet] = {}

        # (node, part) incidence, deduplicated; rows sort by node then
        # part, so the first row of each node names its lowest owner
        pairs = np.unique(
            np.stack([mesh.conn.ravel(), np.repeat(parts, 8)], axis=1),
            axis=0,
        )
        node_deg = np.bincount(pairs[:, 0], minlength=mesh.nnode)
        first = np.unique(pairs[:, 0], return_index=True)[1]
        min_owner = np.full(mesh.nnode, -1, dtype=np.int64)
        min_owner[pairs[first, 0]] = pairs[first, 1]

        rank_eids = [np.nonzero(parts == r)[0] for r in range(nranks)]
        rank_nodes = [
            np.unique(mesh.conn[eids].ravel())
            if len(eids)
            else np.array([], dtype=np.int64)
            for eids in rank_eids
        ]

        for r in range(nranks):
            eids = rank_eids[r]
            gnodes = rank_nodes[r]
            local_conn = (
                np.searchsorted(gnodes, mesh.conn[eids])
                if len(eids)
                else np.zeros((0, 8), dtype=np.int64)
            )
            # neighbors: ranks sharing at least one grid point
            shared: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            for o in range(nranks):
                if o == r:
                    continue
                inter = np.intersect1d(
                    gnodes, rank_nodes[o], assume_unique=True
                )
                if len(inter):
                    shared[o] = (np.searchsorted(gnodes, inter), inter)
            # interface-first element ordering
            iface_flag = node_deg[gnodes] > 1
            if len(eids):
                emask = iface_flag[local_conn].any(axis=1)
                order = np.concatenate(
                    [np.nonzero(emask)[0], np.nonzero(~emask)[0]]
                )
                eids = eids[order]
                local_conn = local_conn[order]
                n_iface = int(emask.sum())
            else:
                n_iface = 0
            gather_local = np.nonzero(min_owner[gnodes] == r)[0]
            self.ranks.append(
                RankPartition(
                    elements=eids,
                    nodes=gnodes,
                    local_conn=local_conn,
                    shared_with=shared,
                    n_iface_elems=n_iface,
                    gather_nodes=gnodes[gather_local],
                    gather_local=gather_local,
                )
            )
            self.ops.append(
                ElasticOperator(
                    local_conn,
                    mesh.elem_h[eids],
                    lam[eids],
                    mu[eids],
                    len(gnodes),
                    split_elems=n_iface,
                )
            )

    # ------------------------------------------------------------ actions

    def scatter_field(self, u: np.ndarray) -> list[np.ndarray]:
        """Distribute a global nodal field to per-rank local copies."""
        return [u[rp.nodes] for rp in self.ranks]

    def gather_field(
        self, locals_u: list[np.ndarray], out: np.ndarray | None = None
    ) -> np.ndarray:
        """Assemble per-rank local fields into a global vector; each
        grid point is written by its lowest co-owner (deterministic
        regardless of rank execution order)."""
        if out is None:
            out = np.zeros((self.mesh.nnode,) + locals_u[0].shape[1:])
        for rp, u in zip(self.ranks, locals_u):
            out[rp.gather_nodes] = u[rp.gather_local]
        return out

    def matvec_distributed(self, u: np.ndarray) -> np.ndarray:
        """Full distributed stiffness application, returning the
        assembled global result (for verification and driving).
        Executes the overlapped schedule: interface elements, sends,
        interior elements, receives."""
        locals_u = self.scatter_field(u)
        comms = self.world.comms()
        partials = []
        for r, (rp, op) in enumerate(zip(self.ranks, self.ops)):
            y = np.empty((len(rp.nodes), 3))
            op.matvec_interface(locals_u[r], y)
            self.world.stats[r].flops += op.flops_per_matvec
            partials.append(y)
        # post all boundary sends (BSP superstep)
        for r, rp in enumerate(self.ranks):
            for o, (loc, _) in rp.shared_with.items():
                comms[r].Send(partials[r][loc], o, tag=r)
        # overlap region: interior work while messages are in flight
        for r, (rp, op) in enumerate(zip(self.ranks, self.ops)):
            op.matvec_interior_acc(locals_u[r], partials[r])
        # receive and accumulate
        for r, rp in enumerate(self.ranks):
            for o, (loc, _) in rp.shared_with.items():
                incoming = comms[r].Recv(o, tag=o)
                partials[r][loc] += incoming
                self.world.stats[r].flops += incoming.size
        return self.gather_field(partials)

    # ------------------------------------------------- k-deep ghost halos

    def build_fused_halos(self, depth: int) -> FusedHaloSet:
        """Construct every rank's k-deep ghost halo for fused stepping.

        The halo of rank ``r`` is grown by ``depth`` rings of the
        node-element adjacency the :class:`~repro.backend.sparse_ops.
        ScatterPlan` already encodes (its CSR rows are nodes, its slots
        name elements): starting from the rank's own nodes, each ring
        marks every element touching a marked node and then every node
        of a marked element.  After ``depth`` rings the rank holds
        enough ghost state to march ``depth`` leapfrog steps before any
        value it owns depends on un-refreshed data — errors at the halo
        fringe propagate exactly one element ring inward per step.

        The halo elements are grouped by owning rank into
        :class:`HaloPerspective` replicas (owner-local element and node
        order preserved), and the directed partial-sum ``adds`` between
        perspectives are derived from the owners' ``shared_with``
        intersections restricted to the nodes both perspectives carry —
        nodes where only one side is present lie in the stale fringe
        and never reach the owned region within ``depth`` steps.

        Results are cached per depth (construction is a few global
        passes over the connectivity).
        """
        depth = int(depth)
        if depth < 1:
            raise ValueError(f"halo depth must be >= 1, got {depth}")
        cached = self._fused_cache.get(depth)
        if cached is not None:
            return cached
        mesh = self.mesh
        conn = mesh.conn
        ncorner = conn.shape[1]
        # node -> touching elements, read off the ScatterPlan CSR
        # (slot i of the flattened connectivity belongs to element
        # i // ncorner)
        plan = ScatterPlan(conn.ravel(), mesh.nnode)
        adj_elems = np.asarray(plan.indices, dtype=np.int64) // ncorner
        counts = np.diff(plan.indptr).astype(np.int64)

        halos = []
        for r, rp in enumerate(self.ranks):
            node_mask = np.zeros(mesh.nnode, dtype=bool)
            node_mask[rp.nodes] = True
            elem_mask = np.zeros(mesh.nelem, dtype=bool)
            for _ in range(depth):
                elem_mask[adj_elems[np.repeat(node_mask, counts)]] = True
                node_mask[conn[elem_mask].ravel()] = True
            owners = (
                np.unique(self.parts[elem_mask])
                if elem_mask.any()
                else np.array([], dtype=np.int64)
            )
            persp: dict[int, HaloPerspective] = {}
            for o in owners:
                o = int(o)
                rp_o = self.ranks[o]
                sel = elem_mask[rp_o.elements]
                e_lo = np.nonzero(sel)[0]
                sub_conn = rp_o.local_conn[e_lo]
                n_lo = np.unique(sub_conn)
                persp[o] = HaloPerspective(
                    owner=o,
                    elements=e_lo,
                    nodes=n_lo,
                    conn=np.searchsorted(n_lo, sub_conn),
                    elements_global=rp_o.elements[e_lo],
                    nodes_global=rp_o.nodes[n_lo],
                    n_iface=rp_o.n_iface_elems if o == r else 0,
                )
            if r not in persp:  # empty rank: keep an (empty) own replica
                persp[r] = HaloPerspective(
                    owner=r,
                    elements=np.zeros(0, dtype=np.int64),
                    nodes=np.zeros(0, dtype=np.int64),
                    conn=np.zeros((0, ncorner), dtype=np.int64),
                    elements_global=np.zeros(0, dtype=np.int64),
                    nodes_global=np.zeros(0, dtype=np.int64),
                    n_iface=0,
                )
            else:
                # ring 1 starts from every own node, so the own
                # perspective is the rank's full partition
                assert len(persp[r].elements) == len(rp.elements)

            adds = []
            for dst in sorted(persp):
                p = persp[dst]
                rp_p = self.ranks[dst]
                # ascending-src order == the unfused receive loop order
                # (shared_with is built in ascending rank order)
                for src, (_, gids) in rp_p.shared_with.items():
                    if src not in persp:
                        continue
                    s = persp[src]
                    pres = np.isin(
                        gids, p.nodes_global, assume_unique=True
                    ) & np.isin(gids, s.nodes_global, assume_unique=True)
                    if dst == r and not pres.all():
                        raise AssertionError(
                            "own-perspective partial-sum adds must cover "
                            "every shared node (halo ring 1 incomplete)"
                        )
                    common = gids[pres]
                    if not len(common):
                        continue
                    adds.append(
                        (
                            dst,
                            src,
                            np.searchsorted(p.nodes_global, common),
                            np.searchsorted(s.nodes_global, common),
                        )
                    )
            halos.append(
                FusedHalo(
                    rank=r,
                    depth=depth,
                    perspectives=persp,
                    adds=adds,
                    sources=sorted(o for o in persp if o != r),
                )
            )
        # second pass: each source rank learns what to ship where (the
        # request is simply every node of the requester's replica)
        for h in halos:
            for o in h.sources:
                halos[o].sends[h.rank] = h.perspectives[o].nodes
        out = FusedHaloSet(depth=depth, halos=halos)
        self._fused_cache[depth] = out
        return out

    def fused_profile(self, depth: int) -> list[dict]:
        """Per-rank cost rows of one fused inner step at ``depth``
        (see :meth:`FusedHaloSet.profile`)."""
        nelem_tot = sum(len(rp.elements) for rp in self.ranks)
        per_elem = (
            sum(op.flops_per_matvec for op in self.ops) / nelem_tot
            if nelem_tot
            else 0.0
        )
        return self.build_fused_halos(depth).profile(per_elem)

    # --------------------------------------------------------- accounting

    def per_step_profile(self) -> list[dict]:
        """Per-rank cost profile of ONE stiffness application:
        flops, neighbor count, bytes exchanged.  Pure accounting — no
        execution — used by the scalability study at large P."""
        profile = []
        for rp, op in zip(self.ranks, self.ops):
            bytes_out = sum(
                8 * 3 * len(loc) for (loc, _) in rp.shared_with.values()
            )
            profile.append(
                {
                    "flops": op.flops_per_matvec + 12 * len(rp.nodes),
                    "neighbors": len(rp.shared_with),
                    "bytes": bytes_out,
                    "elements": len(rp.elements),
                    "interface_elements": rp.n_iface_elems,
                    "nodes": len(rp.nodes),
                }
            )
        return profile
