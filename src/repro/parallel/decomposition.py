"""Distributed element-based matvec over a pluggable communicator.

Elements are partitioned across ranks (ParMETIS in the paper, RCB
here); each rank owns its elements and a local copy of every grid point
they touch.  A stiffness application is then

1. local gather / dense element products / local scatter (the serial
   :class:`repro.fem.assembly.ElasticOperator` on the rank's elements);
2. **interface exchange**: grid points shared between ranks hold only
   partial sums, so each rank sends its partials on shared nodes to the
   co-owning ranks and accumulates what it receives.

To let step 2 hide behind step 1 — the classic bulk-synchronous
comm/compute overlap the paper's machine model assumes — each rank's
elements are ordered **interface first**: the elements touching any
shared grid point form a prefix, the per-rank operator is built with
the matching ``split_elems``, and its planned-CSR scatter is split
along the same boundary (:meth:`repro.backend.sparse_ops.ScatterPlan.
split`).  A time step then applies the interface elements, ships the
boundary partial sums, and runs the interior elements while the
messages are in flight.

The exchange executes through :class:`repro.parallel.simcomm.SimComm`
endpoints over either transport (in-process mailboxes or the real
shared-memory process transport), so message counts and byte volumes
are measured, not estimated — they drive the Table 2.1 machine model.
The assembled result is verified against the serial operator in the
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.assembly import ElasticOperator
from repro.mesh.hexmesh import HexMesh


@dataclass
class RankPartition:
    """One rank's share of the mesh.

    ``elements``/``local_conn`` are ordered interface-first: the first
    ``n_iface_elems`` entries touch at least one shared grid point.
    ``gather_nodes``/``gather_local`` name the grid points this rank
    contributes to a global gather (its nodes whose lowest co-owner it
    is), so gathers are deterministic under concurrent writers.
    """

    elements: np.ndarray  # global element ids (interface first)
    nodes: np.ndarray  # global node ids owned as local copies (sorted)
    local_conn: np.ndarray  # connectivity renumbered into local nodes
    shared_with: dict  # neighbor rank -> (local idx of shared nodes,
    #                                      matching global ids)
    n_iface_elems: int  # leading elements touching shared nodes
    gather_nodes: np.ndarray  # global ids this rank gathers
    gather_local: np.ndarray  # their local indices


class DistributedElasticOperator:
    """Element partition + per-rank operators + ghost exchange."""

    def __init__(
        self,
        mesh: HexMesh,
        lam: np.ndarray,
        mu: np.ndarray,
        parts: np.ndarray,
        world,
    ):
        self.mesh = mesh
        self.world = world
        nranks = world.nranks
        parts = np.asarray(parts)
        if parts.max() >= nranks:
            raise ValueError("partition refers to more ranks than the world")
        self.parts = parts
        lam = np.asarray(lam)
        mu = np.asarray(mu)
        self.ranks: list[RankPartition] = []
        self.ops: list[ElasticOperator] = []

        # (node, part) incidence, deduplicated; rows sort by node then
        # part, so the first row of each node names its lowest owner
        pairs = np.unique(
            np.stack([mesh.conn.ravel(), np.repeat(parts, 8)], axis=1),
            axis=0,
        )
        node_deg = np.bincount(pairs[:, 0], minlength=mesh.nnode)
        first = np.unique(pairs[:, 0], return_index=True)[1]
        min_owner = np.full(mesh.nnode, -1, dtype=np.int64)
        min_owner[pairs[first, 0]] = pairs[first, 1]

        rank_eids = [np.nonzero(parts == r)[0] for r in range(nranks)]
        rank_nodes = [
            np.unique(mesh.conn[eids].ravel())
            if len(eids)
            else np.array([], dtype=np.int64)
            for eids in rank_eids
        ]

        for r in range(nranks):
            eids = rank_eids[r]
            gnodes = rank_nodes[r]
            local_conn = (
                np.searchsorted(gnodes, mesh.conn[eids])
                if len(eids)
                else np.zeros((0, 8), dtype=np.int64)
            )
            # neighbors: ranks sharing at least one grid point
            shared: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            for o in range(nranks):
                if o == r:
                    continue
                inter = np.intersect1d(
                    gnodes, rank_nodes[o], assume_unique=True
                )
                if len(inter):
                    shared[o] = (np.searchsorted(gnodes, inter), inter)
            # interface-first element ordering
            iface_flag = node_deg[gnodes] > 1
            if len(eids):
                emask = iface_flag[local_conn].any(axis=1)
                order = np.concatenate(
                    [np.nonzero(emask)[0], np.nonzero(~emask)[0]]
                )
                eids = eids[order]
                local_conn = local_conn[order]
                n_iface = int(emask.sum())
            else:
                n_iface = 0
            gather_local = np.nonzero(min_owner[gnodes] == r)[0]
            self.ranks.append(
                RankPartition(
                    elements=eids,
                    nodes=gnodes,
                    local_conn=local_conn,
                    shared_with=shared,
                    n_iface_elems=n_iface,
                    gather_nodes=gnodes[gather_local],
                    gather_local=gather_local,
                )
            )
            self.ops.append(
                ElasticOperator(
                    local_conn,
                    mesh.elem_h[eids],
                    lam[eids],
                    mu[eids],
                    len(gnodes),
                    split_elems=n_iface,
                )
            )

    # ------------------------------------------------------------ actions

    def scatter_field(self, u: np.ndarray) -> list[np.ndarray]:
        """Distribute a global nodal field to per-rank local copies."""
        return [u[rp.nodes] for rp in self.ranks]

    def gather_field(
        self, locals_u: list[np.ndarray], out: np.ndarray | None = None
    ) -> np.ndarray:
        """Assemble per-rank local fields into a global vector; each
        grid point is written by its lowest co-owner (deterministic
        regardless of rank execution order)."""
        if out is None:
            out = np.zeros((self.mesh.nnode,) + locals_u[0].shape[1:])
        for rp, u in zip(self.ranks, locals_u):
            out[rp.gather_nodes] = u[rp.gather_local]
        return out

    def matvec_distributed(self, u: np.ndarray) -> np.ndarray:
        """Full distributed stiffness application, returning the
        assembled global result (for verification and driving).
        Executes the overlapped schedule: interface elements, sends,
        interior elements, receives."""
        locals_u = self.scatter_field(u)
        comms = self.world.comms()
        partials = []
        for r, (rp, op) in enumerate(zip(self.ranks, self.ops)):
            y = np.empty((len(rp.nodes), 3))
            op.matvec_interface(locals_u[r], y)
            self.world.stats[r].flops += op.flops_per_matvec
            partials.append(y)
        # post all boundary sends (BSP superstep)
        for r, rp in enumerate(self.ranks):
            for o, (loc, _) in rp.shared_with.items():
                comms[r].Send(partials[r][loc], o, tag=r)
        # overlap region: interior work while messages are in flight
        for r, (rp, op) in enumerate(zip(self.ranks, self.ops)):
            op.matvec_interior_acc(locals_u[r], partials[r])
        # receive and accumulate
        for r, rp in enumerate(self.ranks):
            for o, (loc, _) in rp.shared_with.items():
                incoming = comms[r].Recv(o, tag=o)
                partials[r][loc] += incoming
                self.world.stats[r].flops += incoming.size
        return self.gather_field(partials)

    # --------------------------------------------------------- accounting

    def per_step_profile(self) -> list[dict]:
        """Per-rank cost profile of ONE stiffness application:
        flops, neighbor count, bytes exchanged.  Pure accounting — no
        execution — used by the scalability study at large P."""
        profile = []
        for rp, op in zip(self.ranks, self.ops):
            bytes_out = sum(
                8 * 3 * len(loc) for (loc, _) in rp.shared_with.values()
            )
            profile.append(
                {
                    "flops": op.flops_per_matvec + 12 * len(rp.nodes),
                    "neighbors": len(rp.shared_with),
                    "bytes": bytes_out,
                    "elements": len(rp.elements),
                    "interface_elements": rp.n_iface_elems,
                    "nodes": len(rp.nodes),
                }
            )
        return profile
