"""Distributed element-based matvec over a simulated communicator.

Elements are partitioned across ranks (ParMETIS in the paper, RCB
here); each rank owns its elements and a local copy of every grid point
they touch.  A stiffness application is then

1. local gather / dense element products / local scatter (the serial
   :class:`repro.fem.assembly.ElasticOperator` on the rank's elements);
2. **interface exchange**: grid points shared between ranks hold only
   partial sums, so each rank sends its partials on shared nodes to the
   co-owning ranks and accumulates what it receives.

The exchange executes through :class:`repro.parallel.simcomm.SimComm`
mailboxes, so message counts and byte volumes are measured, not
estimated — they drive the Table 2.1 machine model.  The assembled
result is verified against the serial operator in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.assembly import ElasticOperator
from repro.mesh.hexmesh import HexMesh
from repro.parallel.simcomm import SimWorld


@dataclass
class RankPartition:
    """One rank's share of the mesh."""

    elements: np.ndarray  # global element ids
    nodes: np.ndarray  # global node ids owned as local copies
    local_conn: np.ndarray  # connectivity renumbered into local nodes
    shared_with: dict  # neighbor rank -> (local idx of shared nodes,
    #                                      matching global ids)


class DistributedElasticOperator:
    """Element partition + per-rank operators + ghost exchange."""

    def __init__(
        self,
        mesh: HexMesh,
        lam: np.ndarray,
        mu: np.ndarray,
        parts: np.ndarray,
        world: SimWorld,
    ):
        self.mesh = mesh
        self.world = world
        nranks = world.nranks
        parts = np.asarray(parts)
        if parts.max() >= nranks:
            raise ValueError("partition refers to more ranks than the world")
        self.parts = parts
        self.ranks: list[RankPartition] = []
        self.ops: list[ElasticOperator] = []

        node_owner_sets: dict[int, list[int]] = {}
        rank_nodes = []
        for r in range(nranks):
            eids = np.nonzero(parts == r)[0]
            gnodes = np.unique(mesh.conn[eids].ravel()) if len(eids) else np.array([], dtype=np.int64)
            rank_nodes.append(gnodes)
            for g in gnodes:
                node_owner_sets.setdefault(int(g), []).append(r)

        for r in range(nranks):
            eids = np.nonzero(parts == r)[0]
            gnodes = rank_nodes[r]
            g2l = {int(g): i for i, g in enumerate(gnodes)}
            local_conn = np.vectorize(g2l.__getitem__, otypes=[np.int64])(
                mesh.conn[eids]
            ) if len(eids) else np.zeros((0, 8), dtype=np.int64)
            shared: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            for g in gnodes:
                owners = node_owner_sets[int(g)]
                if len(owners) > 1:
                    for o in owners:
                        if o != r:
                            shared.setdefault(o, ([], []))
                            shared[o][0].append(g2l[int(g)])
                            shared[o][1].append(int(g))
            shared = {
                o: (np.array(loc, dtype=np.int64), np.array(glo, dtype=np.int64))
                for o, (loc, glo) in shared.items()
            }
            self.ranks.append(
                RankPartition(
                    elements=eids,
                    nodes=gnodes,
                    local_conn=local_conn,
                    shared_with=shared,
                )
            )
            self.ops.append(
                ElasticOperator(
                    local_conn,
                    mesh.elem_h[eids],
                    np.asarray(lam)[eids],
                    np.asarray(mu)[eids],
                    len(gnodes),
                )
            )

    # ------------------------------------------------------------ actions

    def scatter_field(self, u: np.ndarray) -> list[np.ndarray]:
        """Distribute a global nodal field to per-rank local copies."""
        return [u[rp.nodes] for rp in self.ranks]

    def matvec_distributed(self, u: np.ndarray) -> np.ndarray:
        """Full distributed stiffness application, returning the
        assembled global result (for verification and driving)."""
        locals_u = self.scatter_field(u)
        partials = []
        for r, (rp, op) in enumerate(zip(self.ranks, self.ops)):
            y = op.matvec(locals_u[r])
            self.world.stats[r].flops += op.flops_per_matvec
            partials.append(y)
        # post all sends (BSP superstep)
        comms = self.world.comms()
        for r, rp in enumerate(self.ranks):
            for o, (loc, _) in rp.shared_with.items():
                comms[r].send(partials[r][loc], o, tag=r)
        # receive and accumulate
        for r, rp in enumerate(self.ranks):
            for o, (loc, _) in rp.shared_with.items():
                incoming = comms[r].recv(o, tag=o)
                partials[r][loc] += incoming
                self.world.stats[r].flops += incoming.size
        # gather to a global vector (each shared node now consistent)
        out = np.zeros((self.mesh.nnode, 3))
        for r, rp in enumerate(self.ranks):
            out[rp.nodes] = partials[r]
        return out

    # --------------------------------------------------------- accounting

    def per_step_profile(self) -> list[dict]:
        """Per-rank cost profile of ONE stiffness application:
        flops, neighbor count, bytes exchanged.  Pure accounting — no
        execution — used by the scalability study at large P."""
        profile = []
        for rp, op in zip(self.ranks, self.ops):
            bytes_out = sum(
                8 * 3 * len(loc) for (loc, _) in rp.shared_with.values()
            )
            profile.append(
                {
                    "flops": op.flops_per_matvec + 12 * len(rp.nodes),
                    "neighbors": len(rp.shared_with),
                    "bytes": bytes_out,
                    "elements": len(rp.elements),
                    "nodes": len(rp.nodes),
                }
            )
        return profile
