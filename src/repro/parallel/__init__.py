"""Parallel execution (paper Section 2.4; see DESIGN.md).

The paper's scalability numbers come from 3000 AlphaServer processors
on a Quadrics network.  We reproduce the *algorithmic* side exactly —
element partitions, per-rank work, interface exchange volumes — behind
a pluggable transport: the same SPMD solver runs over an in-process
simulated MPI (:class:`SimWorld`, one core, measured traffic) or over
persistent worker processes with shared-memory channels
(:class:`ProcWorld`, N real cores, comm/compute overlap).  The two
transports produce bit-identical trajectories and identical traffic
statistics; the measured work/communication converts to wall time with
a machine model (:class:`MachineModel`) calibrated either to LeMieux
(:data:`ALPHASERVER_ES45`) or to the local transport
(:func:`measure_transport` + :func:`machine_from_measurements`).
"""

from repro.parallel.simcomm import (
    SimWorld,
    SimComm,
    TrafficStats,
    binomial_rounds,
)
from repro.parallel.transport import (
    ProcWorld,
    TransportCorruption,
    WorkerFailure,
    calibrate_transport,
    clear_transport_calibration,
    measure_transport,
    transport_fingerprint,
)
from repro.parallel.decomposition import (
    DistributedElasticOperator,
    FusedHalo,
    FusedHaloSet,
    HaloPerspective,
)
from repro.parallel.dist_solver import (
    DistributedWaveSolver,
    recommend_sharding,
)
from repro.parallel.perfmodel import (
    MachineModel,
    ALPHASERVER_ES45,
    ScalabilityRow,
    choose_steps_per_exchange,
    machine_from_measurements,
    predict_scalability,
)

__all__ = [
    "SimWorld",
    "SimComm",
    "TrafficStats",
    "binomial_rounds",
    "ProcWorld",
    "TransportCorruption",
    "WorkerFailure",
    "calibrate_transport",
    "clear_transport_calibration",
    "measure_transport",
    "transport_fingerprint",
    "DistributedElasticOperator",
    "FusedHalo",
    "FusedHaloSet",
    "HaloPerspective",
    "DistributedWaveSolver",
    "recommend_sharding",
    "MachineModel",
    "ALPHASERVER_ES45",
    "ScalabilityRow",
    "choose_steps_per_exchange",
    "machine_from_measurements",
    "predict_scalability",
]
