"""Simulated parallel execution (paper Section 2.4; see DESIGN.md).

The paper's scalability numbers come from 3000 AlphaServer processors
on a Quadrics network.  We reproduce the *algorithmic* side exactly —
element partitions, per-rank work, interface exchange volumes — with an
in-process simulated MPI (:class:`SimWorld`), and convert the measured
work/communication into wall time with a calibrated machine model
(:class:`MachineModel`).  The distributed matvec is executed for real
(rank by rank, ghost exchange and all) and verified to reproduce the
serial operator bit-for-bit on shared nodes.
"""

from repro.parallel.simcomm import SimWorld, SimComm
from repro.parallel.decomposition import DistributedElasticOperator
from repro.parallel.dist_solver import DistributedWaveSolver
from repro.parallel.perfmodel import (
    MachineModel,
    ALPHASERVER_ES45,
    ScalabilityRow,
    predict_scalability,
)

__all__ = [
    "SimWorld",
    "SimComm",
    "DistributedElasticOperator",
    "DistributedWaveSolver",
    "MachineModel",
    "ALPHASERVER_ES45",
    "ScalabilityRow",
    "predict_scalability",
]
