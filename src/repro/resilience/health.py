"""Numerical health guards for the time loops and the optimizer.

An explicit wave solver that goes unstable does not crash — it silently
propagates ``inf``/``NaN`` garbage for the rest of the run (hours, at
the paper's scale).  The guards here turn that failure mode into a
structured, attributable error:

* :func:`check_finite` — NaN/Inf sentinel for state arrays, called from
  the fused update loops every ``health_interval`` steps (amortized:
  one ``np.isfinite`` reduction per interval, nothing per step);
* :func:`validate_cfl` — re-validates the time step against the CFL
  bound at run start, catching a ``dt`` that was computed for a
  different mesh or material (the implementation lives with the CFL
  math in :mod:`repro.physics.cfl`, which caches the per-element
  ratios and names the limiting element; re-exported here so the
  resilience-facing import path keeps working);
* :class:`NumericalHealthError` — carries the step, rank, and field
  name, so a distributed failure report says *where* the run went bad.

Violations are counted in ``repro.telemetry`` under
``resilience.health_violations``.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry

#: default state-check cadence for the solver time loops; one finite
#: reduction every this many steps keeps the hot-loop cost amortized
#: under the <=2% overhead gate
DEFAULT_HEALTH_INTERVAL = 32


class NumericalHealthError(RuntimeError):
    """A state array stopped being finite (or a stability precondition
    failed).  ``step``/``rank``/``field`` say where."""

    def __init__(self, detail: str, *, step: int | None = None,
                 rank: int | None = None, field: str | None = None):
        at = []
        if field is not None:
            at.append(f"field {field!r}")
        if step is not None:
            at.append(f"step {step}")
        if rank is not None:
            at.append(f"rank {rank}")
        suffix = f" ({', '.join(at)})" if at else ""
        super().__init__(detail + suffix)
        self.step = step
        self.rank = rank
        self.field = field


def check_finite(arr: np.ndarray, *, step: int | None = None,
                 rank: int | None = None, field: str = "u") -> None:
    """Raise :class:`NumericalHealthError` if ``arr`` contains a
    non-finite entry.  One vectorized reduction — callers amortize it
    over ``health_interval`` steps."""
    if np.isfinite(np.sum(arr)):
        return
    # slow path: the run is already lost, spend the pass to say where
    bad = int(np.count_nonzero(~np.isfinite(arr)))
    telemetry.count("resilience.health_violations")
    err = NumericalHealthError(
        f"non-finite state: {bad} NaN/Inf entries", step=step, rank=rank,
        field=field,
    )
    # black box before unwinding: the flight recorder (if armed) gets
    # the last-N span events + metric snapshot at the failure point
    telemetry.flight_dump(f"numerical_health: {err}")
    raise err


def should_check(k: int, nsteps: int, interval: int | None) -> bool:
    """Sentinel cadence: every ``interval`` steps plus always the final
    step (so late-run corruption cannot escape the guard)."""
    if not interval:
        return False
    return k == nsteps - 1 or (k + 1) % interval == 0


from repro.physics.cfl import validate_cfl  # noqa: E402  (re-export)

__all__ = [
    "DEFAULT_HEALTH_INTERVAL",
    "NumericalHealthError",
    "check_finite",
    "should_check",
    "validate_cfl",
]
