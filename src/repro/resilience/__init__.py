"""``repro.resilience`` — fault tolerance for long forward/inverse runs.

The paper's headline runs hold thousands of processors for hours — a
regime where node failure is routine and checkpoint/restart is table
stakes.  This package supplies the three pieces the solvers and the
process transport build on:

* **health guards** (:mod:`~repro.resilience.health`) — NaN/Inf
  sentinels, CFL re-validation, and the structured
  :class:`NumericalHealthError` they raise;
* **fault injection** (:mod:`~repro.resilience.faults`) — the
  deterministic :class:`FaultPlan` harness (``REPRO_FAULTS`` spec) the
  recovery tests drive every failure path with;
* **retry policy** (:mod:`~repro.resilience.recovery`) — bounded
  exponential backoff for the respawn-and-rewind loop.

The durable checkpoint format itself lives with the solvers
(:mod:`repro.solver.checkpoint`), the failure detection with the
transport (:mod:`repro.parallel.transport`).
"""

from repro.resilience.faults import KILL_EXIT_CODE, FaultPlan, FaultSpec
from repro.resilience.health import (
    DEFAULT_HEALTH_INTERVAL,
    NumericalHealthError,
    check_finite,
    should_check,
    validate_cfl,
)
from repro.resilience.recovery import RetryPolicy

__all__ = [
    "DEFAULT_HEALTH_INTERVAL",
    "FaultPlan",
    "FaultSpec",
    "KILL_EXIT_CODE",
    "NumericalHealthError",
    "RetryPolicy",
    "check_finite",
    "should_check",
    "validate_cfl",
]
