"""Retry policy for recovering SPMD runs from worker failures.

The distributed solver's recovery loop is: detect the failure (dead /
hung / erroring ranks, surfaced as
:class:`~repro.parallel.transport.WorkerFailure`), tear the worker pool
down and respawn it, rewind to the last collective checkpoint, and
re-dispatch — with bounded exponential backoff between attempts so a
persistently failing environment gives up instead of spinning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import telemetry


@dataclass
class RetryPolicy:
    """Bounded exponential backoff for SPMD recovery.

    ``max_retries`` failed attempts after the first raise the last
    failure; the sleep before retry ``i`` (1-based) is
    ``backoff * factor**(i-1)``, capped at ``max_backoff``.
    """

    max_retries: int = 2
    backoff: float = 0.05
    factor: float = 2.0
    max_backoff: float = 5.0

    def sleep_before(self, attempt: int) -> float:
        """Backoff duration before retry ``attempt`` (1-based)."""
        return min(
            self.backoff * self.factor ** (attempt - 1), self.max_backoff
        )

    def wait(self, attempt: int) -> None:
        delay = self.sleep_before(attempt)
        telemetry.count("resilience.retries")
        if delay > 0:
            time.sleep(delay)

    def call(self, fn, *, retry_on=(Exception,), on_retry=None):
        """Run ``fn()`` under this policy: exceptions matching
        ``retry_on`` are retried up to ``max_retries`` times with the
        backoff schedule between attempts; anything else (and the
        final matching failure) propagates.  ``on_retry(attempt,
        exc)`` is invoked before each backoff sleep, letting callers
        count or log the transient."""
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as e:
                attempt += 1
                if attempt > self.max_retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, e)
                self.wait(attempt)
