"""Deterministic fault injection for the resilience test matrix.

A :class:`FaultPlan` is a small, picklable list of :class:`FaultSpec`
entries that the solvers and the process transport consult at
well-defined points of the SPMD loop.  Because every fault is keyed on
``(kind, rank, step, attempt)`` the injected failures are *exactly*
reproducible — the recovery tests assert bit-identical results against
unfaulted runs, which only makes sense when the fault fires at the same
instruction every time.

Kinds
-----
``kill``
    The worker process exits hard (``os._exit``) at the top of the
    given step — a node crash.  The master detects the dead rank via
    pipe EOF / liveness polling and recovers from the last collective
    checkpoint.
``delay``
    Sleep ``seconds`` before the step's channel sends — a slow NIC or a
    descheduled core.  With a ``hang_timeout`` configured the master
    declares the rank hung; without one the run just stretches.
``drop``
    Swallow this step's channel sends — the peers' receives time out
    and surface as rank errors.
``corrupt``
    Flip a byte of the payload *after* the channel CRC is computed —
    the receiver's CRC check raises
    :class:`~repro.parallel.transport.TransportCorruption`.
``nan``
    Poison one entry of the state array after the step's update — the
    numerical health sentinel turns it into a structured
    :class:`~repro.resilience.health.NumericalHealthError`.

Spec grammar (``REPRO_FAULTS`` environment variable or
:meth:`FaultPlan.parse`)::

    spec    := fault (";" fault)*
    fault   := kind ":" key "=" value ("," key "=" value)*
    kind    := "kill" | "delay" | "drop" | "corrupt" | "nan"
    key     := "rank" | "step" | "attempt" | "seconds" | "dest"

e.g. ``REPRO_FAULTS="kill:rank=1,step=40;corrupt:rank=0,step=3,attempt=1"``.
``rank`` defaults to 0, ``attempt`` to 0 (so a recovered retry does not
re-fire the fault), ``dest`` to any peer.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry

KINDS = ("kill", "delay", "drop", "corrupt", "nan")

#: process exit code used by injected kills (distinguishable from
#: normal worker exits in the master's failure report)
KILL_EXIT_CODE = 173


@dataclass
class FaultSpec:
    """One scheduled fault: fires when the plan's ``attempt`` matches
    and the executing rank reaches ``step``."""

    kind: str
    rank: int = 0
    step: int = 0
    attempt: int = 0
    seconds: float = 0.1  # delay duration
    dest: int | None = None  # restrict drop/corrupt/delay to one peer

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        self.rank = int(self.rank)
        self.step = int(self.step)
        self.attempt = int(self.attempt)
        self.seconds = float(self.seconds)
        if self.dest is not None:
            self.dest = int(self.dest)


class FaultPlan:
    """A deterministic set of faults, consulted from the solver loops
    and the transport.  Picklable: the master builds it, workers
    receive a copy in their payload.  ``attempt`` is bumped by the
    recovery loop before each retry so one-shot faults stay one-shot.
    """

    def __init__(self, specs=(), *, attempt: int = 0):
        self.specs = [
            s if isinstance(s, FaultSpec) else FaultSpec(**s) for s in specs
        ]
        self.attempt = int(attempt)
        self.fired: list[tuple] = []  # worker-local injection log

    # ------------------------------------------------------- construction

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        specs = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            kind, _, argstr = part.partition(":")
            kind = kind.strip()
            kwargs = {}
            for pair in argstr.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                if not eq:
                    raise ValueError(
                        f"malformed fault argument {pair!r} in {part!r} "
                        "(expected key=value)"
                    )
                key = key.strip()
                if key in ("rank", "step", "attempt", "dest"):
                    kwargs[key] = int(value)
                elif key == "seconds":
                    kwargs[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown fault key {key!r} in {part!r}"
                    )
            specs.append(FaultSpec(kind=kind, **kwargs))
        return cls(specs)

    @classmethod
    def from_env(cls, env: str = "REPRO_FAULTS") -> "FaultPlan | None":
        """Plan from the environment, or None when unset/empty."""
        spec = os.environ.get(env, "").strip()
        return cls.parse(spec) if spec else None

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __getstate__(self):
        return {"specs": self.specs, "attempt": self.attempt}

    def __setstate__(self, state):
        self.specs = state["specs"]
        self.attempt = state["attempt"]
        self.fired = []

    def retried(self) -> "FaultPlan":
        """A copy for the next recovery attempt (``attempt + 1``):
        faults scheduled for earlier attempts will not re-fire."""
        return FaultPlan(self.specs, attempt=self.attempt + 1)

    # --------------------------------------------------------- injection

    def _match(self, kind: str, rank: int, step: int):
        for s in self.specs:
            if (
                s.kind == kind
                and s.rank == rank
                and s.step == step
                and s.attempt == self.attempt
            ):
                return s
        return None

    def _record(self, kind: str, rank: int, step: int) -> None:
        self.fired.append((kind, rank, step, self.attempt))
        telemetry.count("resilience.faults_injected")

    def on_step_begin(self, rank: int, step: int) -> None:
        """Solver-loop hook at the top of step ``step``: executes a
        scheduled ``kill`` (hard process exit) for this rank."""
        s = self._match("kill", rank, step)
        if s is not None:
            self._record("kill", rank, step)
            os._exit(KILL_EXIT_CODE)

    def poison_state(self, rank: int, step: int, state: np.ndarray) -> None:
        """Solver-loop hook after the step's update: a scheduled
        ``nan`` fault poisons one entry of the freshly computed state
        (in place)."""
        s = self._match("nan", rank, step)
        if s is not None:
            self._record("nan", rank, step)
            state.reshape(-1)[0] = np.nan

    def send_action(self, rank: int, step: int, dest: int) -> str | None:
        """Transport hook before a channel send from ``rank`` to
        ``dest`` at ``step``: returns ``None`` (send normally),
        ``"drop"`` (swallow the message) or ``"corrupt"`` (flip a
        payload byte after the CRC).  A scheduled ``delay`` sleeps here
        and then sends normally."""
        s = self._match("delay", rank, step)
        if s is not None and (s.dest is None or s.dest == dest):
            self._record("delay", rank, step)
            time.sleep(s.seconds)
        for kind in ("drop", "corrupt"):
            s = self._match(kind, rank, step)
            if s is not None and (s.dest is None or s.dest == dest):
                self._record(kind, rank, step)
                return kind
        return None

    def wants_crc(self) -> bool:
        """True when the plan schedules payload corruption (the
        transport then forces CRC verification on)."""
        return any(s.kind == "corrupt" for s in self.specs)
