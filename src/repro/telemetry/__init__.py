"""``repro.telemetry`` — unified instrumentation for the repro stack.

One subsystem answers "where did the time go" for any run:

* **spans** — hierarchical tracing (:func:`span`) with aggregated wall
  time + call counts + attached counters, near-zero overhead when
  disabled (see :mod:`repro.telemetry.spans`);
* **metrics** — a global :class:`MetricsRegistry` of counters, gauges,
  histograms, and per-step series (:func:`sample`, :func:`gauge`),
  superseding the old ``FlopCounter``/``TrafficStats`` fragments;
* **timelines** — per-rank phase timelines of the distributed time
  loop, merged into comm/compute-overlap and load-imbalance views
  (:mod:`repro.telemetry.timeline`);
* **exporters** — :func:`dump_jsonl` trace dumps and the
  Table-2.1-style :class:`PerfReport`.

Enable via :func:`enable`, the ``REPRO_TELEMETRY=1`` environment
variable, or the ``repro profile`` CLI.  While disabled every hook is
a single ``is None`` test, so instrumented hot loops stay
zero-allocation and bitwise-identical.
"""

from __future__ import annotations

from .metrics import (
    CategoryCounter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
)
from .report import PerfReport
from .spans import (
    SpanStats,
    Tracer,
    add,
    annotate,
    current_tracer,
    enabled,
    get_trace_context,
    new_trace_id,
    set_trace_context,
    span,
    trace_context,
)
from .spans import disable as _spans_disable
from .spans import enable as _spans_enable
from .timeline import PHASES, MergedTimeline, RankTimeline

__all__ = [
    "CategoryCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "MergedTimeline",
    "MetricsRegistry",
    "PHASES",
    "PerfReport",
    "RankTimeline",
    "Series",
    "SpanStats",
    "Tracer",
    "add",
    "annotate",
    "count",
    "current_tracer",
    "disable",
    "dump_jsonl",
    "enable",
    "enabled",
    "flight_dump",
    "gauge",
    "get_trace_context",
    "metrics",
    "new_trace_id",
    "observe",
    "reset",
    "sample",
    "sample_alloc",
    "set_trace_context",
    "span",
    "trace_context",
]

#: process-wide metrics registry; like the tracer it is always present
#: but only written to while telemetry is enabled
_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The global metrics registry."""
    return _registry


def enable(*, max_events: int = 65536, fresh: bool = True) -> Tracer:
    """Turn telemetry on (tracer + metrics sampling); returns the
    active tracer.  ``fresh=True`` also clears the metrics registry."""
    if fresh:
        _registry.reset()
    return _spans_enable(max_events=max_events, fresh=fresh)


def disable() -> None:
    """Turn telemetry off.  Collected data stays readable through
    :func:`metrics` and the tracer reference you hold."""
    _spans_disable()


def reset() -> None:
    """Drop all collected telemetry (tracer state is rebuilt on the
    next :func:`enable`; the metrics registry is emptied now)."""
    _registry.reset()
    if enabled():
        _spans_enable(fresh=True)


def sample(name: str, value, step=None) -> None:
    """Append ``value`` to the per-step series ``name``.  No-op while
    telemetry is disabled."""
    if enabled():
        _registry.series(name).append(value, step=step)


def gauge(name: str, value) -> None:
    """Set the gauge ``name``.  No-op while telemetry is disabled."""
    if enabled():
        _registry.gauge(name).set(value)


def count(name: str, n: int = 1) -> None:
    """Bump the counter ``name`` by ``n``.  No-op while telemetry is
    disabled (used by the resilience layer to tally checkpoint,
    fault, retry, and health-guard events)."""
    if enabled():
        _registry.counter(name).add(n)


def observe(name: str, value) -> None:
    """Observe ``value`` in the histogram ``name`` (service latency
    distributions, batch sizes).  No-op while telemetry is disabled."""
    if enabled():
        _registry.histogram(name).observe(value)


def sample_alloc(name: str = "alloc.peak_bytes", step=None) -> None:
    """Sample the current traced-memory peak (bytes) into a series.

    Only records when telemetry is enabled AND :mod:`tracemalloc` is
    tracing — starting tracemalloc is left to the caller because it
    slows allocation globally."""
    if enabled():
        import tracemalloc

        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            _registry.series(name).append(peak, step=step)


def dump_jsonl(path: str, *, extra_records=()) -> int:
    """Dump the active trace (plus a metrics snapshot) as JSON lines.
    Returns the number of lines written; 0 if telemetry is disabled."""
    tr = current_tracer()
    if tr is None:
        return 0
    sync_dropped_counter()
    metric_records = [
        {**m, "metric_type": m["type"], "type": "metric", "name": name}
        for name, m in _registry.as_dict().items()
    ]
    return tr.dump_jsonl(
        path, extra_records=list(extra_records) + metric_records
    )


def sync_dropped_counter() -> None:
    """Mirror the tracer's ring-buffer eviction count into the
    ``telemetry.events.dropped`` counter.  Called at export time (not
    per eviction) so the hot path stays one ``is None`` test."""
    tr = current_tracer()
    if tr is not None and tr.dropped_events:
        c = _registry.counter("telemetry.events.dropped")
        c.value = tr.dropped_events


def flight_dump(reason: str) -> str | None:
    """Dump the flight recorder (last-N span events + metric snapshot)
    if one is armed; returns the artifact path or None.  See
    :func:`repro.telemetry.export.arm_flight_recorder`."""
    from .export import flight_dump as _dump

    return _dump(reason)


# imported last: export builds on the registry/tracer defined above
from .export import (  # noqa: E402
    FlightRecorder,
    MetricsJsonlExporter,
    StatusFile,
    arm_flight_recorder,
    prometheus_text,
    stitch_trace,
    write_prometheus,
)

__all__ += [
    "FlightRecorder",
    "MetricsJsonlExporter",
    "StatusFile",
    "arm_flight_recorder",
    "prometheus_text",
    "stitch_trace",
    "sync_dropped_counter",
    "write_prometheus",
]
