"""Paper-style performance report (the shape of Table 2.1).

The paper's headline table reports, per run: per-phase wall time,
sustained Mflop/s per PE, communication volume, and parallel
efficiency.  :class:`PerfReport` renders exactly those quantities from
whatever instrumentation the run produced — span aggregates (phase
seconds + attached flop counters), the per-rank-pair traffic matrix of
:class:`repro.parallel.simcomm.TrafficStats`, and a merged per-rank
timeline — both as a plain dict (for JSON) and as aligned text (for
humans and the golden test).

Column mapping to the paper (see DESIGN.md, "Observability"):

==================  =================================================
report column        Table 2.1 quantity
==================  =================================================
``seconds``          per-phase wall time
``Mflop/s``          sustained flop rate (counted flops / wall time)
``msgs`` ``bytes``   communication volume per rank pair
``efficiency``       parallel efficiency vs the 1-rank baseline
==================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PerfReport"]


def _fmt(x: float, width: int = 10, prec: int = 3) -> str:
    if x is None:
        return " " * (width - 1) + "-"
    return f"{x:{width}.{prec}f}"


@dataclass
class PerfReport:
    """Assembled performance report.

    Parameters
    ----------
    phases:
        ``[{"path", "depth", "seconds", "count", "flops"}]`` rows in
        display order (typically a tracer's depth-first aggregates).
    traffic:
        ``{(src, dst): (messages, bytes)}`` rank-pair matrix.
    timeline:
        Optional :meth:`repro.telemetry.timeline.MergedTimeline.
        summary` dict.
    baseline_seconds / parallel_seconds / nranks:
        When all given, parallel efficiency is
        ``baseline / (nranks * parallel)``.
    metrics:
        Optional registry snapshot (``MetricsRegistry.as_dict()``).
    lts:
        Optional local-time-stepping summary: an
        :meth:`repro.solver.lts.LTSPlan.as_dict` dict (histogram,
        theoretical speedup), optionally extended with an
        ``achieved_speedup`` measured against a global-dt run.
    fused:
        Optional communication-avoiding stepping summary, typically a
        :attr:`repro.parallel.dist_solver.DistributedWaveSolver.
        last_fused` dict (``steps_per_exchange``, ``nsteps``, model
        times).  :meth:`collect` derives ``messages_per_step`` and the
        fused-vs-unfused message ``reduction`` from the traffic matrix
        when ``world`` is given.
    service:
        Optional simulation-service summary: merge of
        :meth:`repro.service.Engine.stats` (artifact-cache hit/miss,
        bytes, build seconds) and
        :meth:`repro.service.CoalescingScheduler.stats` (requests,
        batches, mean coalesced width).
    title:
        Heading of the text rendering.
    """

    phases: list = field(default_factory=list)
    traffic: dict = field(default_factory=dict)
    timeline: dict | None = None
    baseline_seconds: float | None = None
    parallel_seconds: float | None = None
    nranks: int | None = None
    metrics: dict = field(default_factory=dict)
    lts: dict | None = None
    fused: dict | None = None
    service: dict | None = None
    title: str = "Performance report"

    # ------------------------------------------------------ construction

    @classmethod
    def collect(
        cls,
        *,
        tracer=None,
        world=None,
        timeline=None,
        flops=None,
        baseline_seconds=None,
        parallel_seconds=None,
        nranks=None,
        metrics=None,
        lts=None,
        fused=None,
        service=None,
        title="Performance report",
    ) -> "PerfReport":
        """Build a report from live instrumentation objects.

        ``tracer`` is a :class:`repro.telemetry.spans.Tracer` (or None),
        ``world`` a SimWorld/ProcWorld whose per-rank
        :class:`TrafficStats` carry the peer matrix, ``timeline`` a
        :class:`~repro.telemetry.timeline.MergedTimeline`, ``flops`` an
        extra :class:`~repro.telemetry.metrics.CategoryCounter` to
        report as pseudo-phases (e.g. a serial solver's counter when
        no spans attributed them).
        """
        phases = []
        if tracer is not None:
            for agg in tracer.aggregates():
                phases.append(
                    {
                        "path": agg["path"],
                        "name": agg["name"],
                        "depth": agg["depth"],
                        "seconds": agg["seconds"],
                        "count": agg["count"],
                        "flops": agg["counters"].get("flops"),
                    }
                )
        if flops is not None:
            for cat, n in sorted(flops.counts.items()):
                phases.append(
                    {
                        "path": f"flops/{cat}",
                        "name": cat,
                        "depth": 0,
                        "seconds": None,
                        "count": None,
                        "flops": n,
                    }
                )
        traffic = {}
        if world is not None:
            for st in world.stats:
                for (src, dst), (m, b) in st.peers.items():
                    pm, pb = traffic.get((src, dst), (0, 0))
                    traffic[(src, dst)] = (pm + m, pb + b)
            if nranks is None:
                nranks = world.nranks
        fused_out = dict(fused) if fused is not None else None
        if fused_out is not None and world is not None:
            # Derive per-step message counts from the measured traffic.
            nsteps = fused_out.get("nsteps")
            msgs = sum(
                st.messages_sent for st in world.stats
            )
            exch = sum(st.exchanges for st in world.stats)
            fused_out.setdefault("messages", msgs)
            fused_out.setdefault("exchanges", exch)
            if nsteps:
                fused_out.setdefault("messages_per_step", msgs / nsteps)
                # Unfused pays one exchange round every step on every
                # rank; fused pays one per k steps, so the realised
                # per-rank reduction factor is steps per exchange round.
                nranks_w = max(len(world.stats), 1)
                fused_out.setdefault(
                    "message_reduction",
                    nsteps * nranks_w / exch if exch else None,
                )
        return cls(
            phases=phases,
            traffic=traffic,
            timeline=(
                timeline.summary()
                if timeline is not None and hasattr(timeline, "summary")
                else timeline
            ),
            baseline_seconds=baseline_seconds,
            parallel_seconds=parallel_seconds,
            nranks=nranks,
            metrics=dict(metrics.as_dict()) if metrics is not None else {},
            lts=dict(lts) if lts is not None else None,
            fused=fused_out,
            service=dict(service) if service is not None else None,
            title=title,
        )

    # --------------------------------------------------------- quantities

    @property
    def efficiency(self) -> float | None:
        """Parallel efficiency ``T_1 / (P * T_P)`` (Table 2.1's last
        column), when the three inputs are known."""
        if (
            self.baseline_seconds is None
            or self.parallel_seconds is None
            or not self.nranks
            or self.parallel_seconds <= 0
        ):
            return None
        return self.baseline_seconds / (self.nranks * self.parallel_seconds)

    def total_traffic(self) -> tuple[int, int]:
        m = sum(v[0] for v in self.traffic.values())
        b = sum(v[1] for v in self.traffic.values())
        return m, b

    # --------------------------------------------------------- rendering

    def as_dict(self) -> dict:
        return {
            "title": self.title,
            "phases": [dict(p) for p in self.phases],
            "traffic": {
                f"{src}->{dst}": {"messages": m, "bytes": b}
                for (src, dst), (m, b) in sorted(self.traffic.items())
            },
            "timeline": self.timeline,
            "baseline_seconds": self.baseline_seconds,
            "parallel_seconds": self.parallel_seconds,
            "nranks": self.nranks,
            "efficiency": self.efficiency,
            "metrics": self.metrics,
            "lts": self.lts,
            "fused": self.fused,
            "service": self.service,
        }

    def as_text(self) -> str:
        lines = [self.title, "=" * len(self.title)]
        if self.phases:
            lines.append("")
            lines.append(
                f"{'phase':<36} {'seconds':>10} {'calls':>8} "
                f"{'Mflop':>12} {'Mflop/s':>10}"
            )
            lines.append("-" * 80)
            for p in self.phases:
                name = "  " * max(p.get("depth", 0), 0) + p["name"]
                secs = p.get("seconds")
                fl = p.get("flops")
                mflop = None if fl is None else fl / 1e6
                rate = (
                    mflop / secs
                    if (mflop is not None and secs and secs > 0)
                    else None
                )
                count = p.get("count")
                lines.append(
                    f"{name:<36} {_fmt(secs)} "
                    f"{'-' if count is None else count:>8} "
                    f"{_fmt(mflop, 12, 2)} {_fmt(rate, 10, 1)}"
                )
        if self.traffic:
            lines.append("")
            lines.append("rank-pair traffic")
            lines.append(f"{'src->dst':<12} {'messages':>10} {'bytes':>14}")
            lines.append("-" * 38)
            for (src, dst), (m, b) in sorted(self.traffic.items()):
                lines.append(f"{f'{src} -> {dst}':<12} {m:>10} {b:>14}")
            tm, tb = self.total_traffic()
            lines.append(f"{'total':<12} {tm:>10} {tb:>14}")
        if self.timeline:
            lines.append("")
            lines.append(
                f"per-rank timeline ({self.timeline.get('nsteps', '?')} "
                "steps)"
            )
            lines.append(
                f"{'rank':>4} {'compute_s':>10} {'comm_s':>10} "
                f"{'iface_frac':>10}"
            )
            lines.append("-" * 38)
            for row in self.timeline.get("per_rank", []):
                lines.append(
                    f"{row['rank']:>4} {_fmt(row['compute_seconds'])} "
                    f"{_fmt(row['comm_seconds'])} "
                    f"{_fmt(row['interface_fraction'], 10, 3)}"
                )
            lines.append(
                "mean step imbalance "
                f"{self.timeline.get('mean_step_imbalance', 0.0):.3f}   "
                "overlap ratio "
                f"{self.timeline.get('overlap_ratio', 0.0):.3f}"
            )
        if self.lts:
            lines.append("")
            hist = self.lts.get("histogram", {})
            pairs = ", ".join(
                f"{r}x: {n}"
                for r, n in sorted(hist.items(), key=lambda kv: int(kv[0]))
            )
            lines.append(f"local time stepping  (clusters {pairs})")
            theo = self.lts.get("theoretical_speedup")
            ach = self.lts.get("achieved_speedup")
            lines.append(
                f"  speedup: theoretical {_fmt(theo, 7, 2)}x"
                + (f"   achieved {_fmt(ach, 7, 2)}x" if ach is not None
                   else "")
            )
        if self.fused:
            lines.append("")
            k = self.fused.get("steps_per_exchange", 1)
            lines.append(
                f"communication-avoiding stepping  (k={k}"
                + (
                    ", auto"
                    if self.fused.get("requested") == "auto"
                    else ""
                )
                + ")"
            )
            mps = self.fused.get("messages_per_step")
            red = self.fused.get("message_reduction")
            if mps is not None:
                lines.append(
                    f"  messages/step {_fmt(mps, 8, 2)}"
                    + (
                        f"   exchange reduction {_fmt(red, 6, 2)}x"
                        if red is not None
                        else ""
                    )
                )
            fb = self.fused.get("fallback")
            if fb:
                lines.append(f"  fell back to k=1 ({fb})")
        if self.service:
            lines.append("")
            sv = self.service
            hits, misses = sv.get("hits", 0), sv.get("misses", 0)
            total = hits + misses
            lines.append("simulation service")
            lines.append(
                f"  artifact cache: {hits}/{total} hits "
                f"({100.0 * hits / total if total else 0.0:.0f}%), "
                f"{sv.get('entries', 0)} live entries, "
                f"build time saved "
                f"{_fmt(sv.get('build_seconds'), 6, 2)}s/build"
            )
            drain = sv.get("drain")
            if drain:
                dh, dm = drain.get("hits", 0), drain.get("misses", 0)
                dt = dh + dm
                lines.append(
                    f"  this drain: {dh}/{dt} hits "
                    f"({100.0 * dh / dt if dt else 0.0:.0f}%), "
                    f"build {_fmt(drain.get('build_seconds'), 6, 2)}s"
                )
            if sv.get("requests"):
                lines.append(
                    f"  coalescing: {sv['requests']} requests in "
                    f"{sv.get('batches', 0)} batches "
                    f"(mean width {_fmt(sv.get('mean_batch'), 5, 2)}, "
                    f"max {sv.get('max_batch_observed', 1)})"
                )
            # robustness: only rendered when the policy machinery
            # actually intervened, so clean drains read as before
            rb = {
                k: sv.get(k, 0)
                for k in (
                    "shed",
                    "deadline_expired",
                    "poisoned",
                    "retries",
                    "bisections",
                    "quarantined",
                )
            }
            breaker = sv.get("breaker", "disabled")
            if any(rb.values()) or breaker not in ("disabled", "closed"):
                lines.append(
                    f"  robustness: shed {rb['shed']}, "
                    f"expired {rb['deadline_expired']}, "
                    f"poisoned {rb['poisoned']} "
                    f"({rb['bisections']} bisect rounds), "
                    f"retries {rb['retries']}, "
                    f"quarantined {rb['quarantined']}, "
                    f"breaker {breaker}"
                )
        lat = {
            name: m
            for name, m in self.metrics.items()
            if name.startswith("service.latency.")
            and m.get("type") == "histogram"
            and m.get("n")
        }
        if lat:
            lines.append("")
            lines.append("service latency quantiles (seconds)")
            lines.append(
                f"{'stage':<12} {'n':>6} {'p50':>10} {'p95':>10} "
                f"{'p99':>10} {'max':>10}"
            )
            lines.append("-" * 62)
            for name, m in sorted(lat.items()):
                stage = name[len("service.latency."):]
                lines.append(
                    f"{stage:<12} {m['n']:>6} {_fmt(m.get('p50'))} "
                    f"{_fmt(m.get('p95'))} {_fmt(m.get('p99'))} "
                    f"{_fmt(m.get('max'))}"
                )
        dropped = self.metrics.get("telemetry.events.dropped")
        if dropped and dropped.get("value"):
            lines.append("")
            lines.append(
                f"telemetry: {dropped['value']} span events evicted "
                "from the ring buffer (raise max_events for full "
                "traces)"
            )
        if self.efficiency is not None:
            lines.append("")
            lines.append(
                f"parallel efficiency vs 1-rank baseline: "
                f"{self.efficiency:.3f}  (P={self.nranks}, "
                f"T1={self.baseline_seconds:.3f}s, "
                f"TP={self.parallel_seconds:.3f}s)"
            )
        return "\n".join(lines)
