"""Per-rank timelines of the distributed time loop.

Each SPMD rank records, per step, how long it spent in each phase of
the bulk-synchronous schedule — interface matvec, boundary sends,
interior matvec (the work the exchange hides behind), receive/wait,
and the local update.  The record is a dense ``(nsteps, 5)`` float
array: two doubles of bookkeeping per phase per step, cheap enough to
keep on while measuring, and compact enough to ship through the
existing result-gather path (the worker result dicts of
``ProcWorld.run_spmd``).

:class:`MergedTimeline` combines the per-rank streams into the views
the paper's measurement tables need: comm/compute overlap, the
interface-vs-interior split, and per-step load imbalance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PHASES", "RankTimeline", "MergedTimeline"]

#: the five phases of one distributed time step, in schedule order
PHASES = ("interface", "send", "interior", "recv", "update")
#: phases that are computation (the rest is communication/wait)
COMPUTE_PHASES = (0, 2, 4)
COMM_PHASES = (1, 3)


class RankTimeline:
    """One rank's per-step phase durations (seconds)."""

    def __init__(self, rank: int, nsteps: int, durations=None,
                 trace_id: str | None = None):
        self.rank = int(rank)
        self.nsteps = int(nsteps)
        # the request trace this run served, if any — set from the
        # trace context piggybacked on the transport's run message so
        # per-rank phases stitch into the request's end-to-end trace
        self.trace_id = trace_id
        if durations is None:
            self.durations = np.zeros((self.nsteps, len(PHASES)))
        else:
            durations = np.asarray(durations, dtype=float)
            if durations.shape != (self.nsteps, len(PHASES)):
                raise ValueError(
                    f"timeline must be ({self.nsteps}, {len(PHASES)}), "
                    f"got {durations.shape}"
                )
            self.durations = durations

    def record(self, step: int, phase: int, seconds: float) -> None:
        self.durations[step, phase] += seconds

    # ------------------------------------------------------------ views

    def phase_totals(self) -> dict[str, float]:
        tot = self.durations.sum(axis=0)
        return {name: float(tot[i]) for i, name in enumerate(PHASES)}

    @property
    def compute_seconds(self) -> float:
        return float(self.durations[:, COMPUTE_PHASES].sum())

    @property
    def comm_seconds(self) -> float:
        return float(self.durations[:, COMM_PHASES].sum())

    @property
    def total_seconds(self) -> float:
        return float(self.durations.sum())

    def interface_fraction(self) -> float:
        """Interface share of the stiffness work (phase seconds)."""
        iface = float(self.durations[:, 0].sum())
        interior = float(self.durations[:, 2].sum())
        denom = iface + interior
        return iface / denom if denom > 0 else 0.0

    def to_payload(self) -> dict:
        payload = {
            "rank": self.rank,
            "nsteps": self.nsteps,
            "durations": self.durations,
        }
        if self.trace_id is not None:
            payload["trace"] = self.trace_id
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RankTimeline":
        return cls(
            payload["rank"],
            payload["nsteps"],
            payload["durations"],
            trace_id=payload.get("trace"),
        )

    def span_records(self) -> list[dict]:
        """JSONL-able span records: sequential intervals per step, in
        schedule order, on a per-rank clock starting at 0."""
        out = []
        t = 0.0
        for k in range(self.nsteps):
            for i, name in enumerate(PHASES):
                dt = float(self.durations[k, i])
                rec = {
                    "type": "rank_span",
                    "rank": self.rank,
                    "step": k,
                    "phase": name,
                    "t_start": t,
                    "duration": dt,
                }
                if self.trace_id is not None:
                    rec["trace"] = self.trace_id
                out.append(rec)
                t += dt
        return out


class MergedTimeline:
    """All ranks' timelines of one distributed run, merged."""

    def __init__(self, ranks: list[RankTimeline]):
        if not ranks:
            raise ValueError("need at least one rank timeline")
        nsteps = {r.nsteps for r in ranks}
        if len(nsteps) != 1:
            raise ValueError(f"rank timelines disagree on nsteps: {nsteps}")
        self.ranks = sorted(ranks, key=lambda r: r.rank)
        self.nsteps = self.ranks[0].nsteps
        self.nranks = len(self.ranks)

    def per_step_compute(self) -> np.ndarray:
        """``(nsteps, nranks)`` compute seconds per step per rank."""
        return np.stack(
            [r.durations[:, COMPUTE_PHASES].sum(axis=1) for r in self.ranks],
            axis=1,
        )

    def step_imbalance(self) -> np.ndarray:
        """Per-step load imbalance ``(max - min) / mean`` of the ranks'
        compute time (0 = perfectly balanced)."""
        c = self.per_step_compute()
        mean = c.mean(axis=1)
        spread = c.max(axis=1) - c.min(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(mean > 0, spread / np.maximum(mean, 1e-300), 0.0)
        return out

    def overlap_ratio(self) -> float:
        """Fraction of communication time hidden behind interior
        compute: ``min(interior, comm) / comm`` summed over ranks —
        1.0 means the exchange was fully overlapped."""
        hidden = 0.0
        comm = 0.0
        for r in self.ranks:
            interior = float(r.durations[:, 2].sum())
            c = r.comm_seconds
            hidden += min(interior, c)
            comm += c
        return hidden / comm if comm > 0 else 1.0

    def summary(self) -> dict:
        imb = self.step_imbalance()
        return {
            "nranks": self.nranks,
            "nsteps": self.nsteps,
            "phases": list(PHASES),
            "per_rank": [
                {
                    "rank": r.rank,
                    "compute_seconds": r.compute_seconds,
                    "comm_seconds": r.comm_seconds,
                    "interface_fraction": r.interface_fraction(),
                    **{
                        f"{name}_seconds": v
                        for name, v in r.phase_totals().items()
                    },
                }
                for r in self.ranks
            ],
            "mean_step_imbalance": float(imb.mean()) if len(imb) else 0.0,
            "max_step_imbalance": float(imb.max()) if len(imb) else 0.0,
            "overlap_ratio": self.overlap_ratio(),
        }

    def span_records(self) -> list[dict]:
        out = []
        for r in self.ranks:
            out.extend(r.span_records())
        return out
