"""Telemetry exporters: Prometheus text, JSONL snapshots, trace
stitching, the serve status file, and the flight recorder.

Four consumers of the same collected state:

* :func:`prometheus_text` renders the :class:`MetricsRegistry` in the
  Prometheus exposition format (counters as ``_total``, histograms as
  summaries with ``quantile`` labels) for a scrape endpoint or a
  node-exporter textfile collector;
* :class:`MetricsJsonlExporter` appends periodic registry snapshots to
  a JSONL file — the poor man's time-series database;
* :func:`stitch_trace` reassembles one request's end-to-end trace from
  the span event ring + trace links + per-rank timeline records;
* :class:`StatusFile` atomically publishes the live service state that
  ``repro top`` renders, and :class:`FlightRecorder` dumps the last-N
  events + a metric snapshot when resilience detects a dead rank or a
  numerical health violation.

Everything here runs at export time, never on the hot path: the only
cost telemetry-off code pays for this module existing is the import.
"""

from __future__ import annotations

import itertools
import json
import os
import time

__all__ = [
    "FlightRecorder",
    "MetricsJsonlExporter",
    "StatusFile",
    "arm_flight_recorder",
    "flight_dump",
    "prometheus_text",
    "stitch_trace",
    "write_prometheus",
]

#: quantiles rendered for every histogram, in exposition order
QUANTILES = (0.5, 0.95, 0.99)


def _prom_name(name: str) -> str:
    """Map a dotted metric name to a Prometheus-legal one."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    s = "".join(out)
    if s and s[0].isdigit():
        s = "_" + s
    return "repro_" + s


def _finite(v) -> float:
    return float(v) if v is not None else 0.0


def prometheus_text(registry=None, *, include_spans: bool = True) -> str:
    """The metrics registry (and, optionally, top-level span totals)
    in the Prometheus text exposition format, version 0.0.4."""
    from repro import telemetry as T

    if registry is None:
        T.sync_dropped_counter()
        registry = T.metrics()
    lines: list[str] = []
    for name, m in sorted(registry.as_dict().items()):
        pname = _prom_name(name)
        kind = m["type"]
        if kind == "counter":
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {m['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_finite(m['value'])}")
        elif kind == "histogram":
            # rendered as a summary: quantile-labelled gauges + the
            # canonical _sum/_count pair
            lines.append(f"# TYPE {pname} summary")
            hist = registry[name]
            for q in QUANTILES:
                lines.append(
                    f'{pname}{{quantile="{q}"}} {hist.quantile(q)}'
                )
            lines.append(f"{pname}_sum {hist.sum}")
            lines.append(f"{pname}_count {hist.n}")
        elif kind == "series":
            if m["values"]:
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {m['values'][-1]}")
    if include_spans:
        tr = T.current_tracer()
        if tr is not None:
            lines.append("# TYPE repro_span_seconds counter")
            lines.append("# TYPE repro_span_calls_total counter")
            for agg in tr.aggregates():
                label = agg["path"].replace('"', "'")
                lines.append(
                    f'repro_span_seconds{{path="{label}"}} '
                    f'{agg["seconds"]}'
                )
                lines.append(
                    f'repro_span_calls_total{{path="{label}"}} '
                    f'{agg["count"]}'
                )
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, registry=None) -> None:
    """Atomically write :func:`prometheus_text` to ``path`` (the
    node-exporter textfile-collector contract)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        f.write(prometheus_text(registry))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class MetricsJsonlExporter:
    """Appends registry snapshots to a JSONL file, one object per
    line: ``{"ts": ..., "seq": ..., "metrics": {...}}``.

    Driven by whoever owns a convenient loop (the serve drain calls
    :meth:`maybe_export` once per poll); no thread of its own, so
    arming it costs nothing between calls."""

    def __init__(self, path: str, interval: float | None = None):
        self.path = path
        self.interval = interval
        self.seq = 0
        self._last = -float("inf")

    def export(self, extra: dict | None = None) -> int:
        """Write one snapshot now; returns the sequence number."""
        from repro import telemetry as T

        T.sync_dropped_counter()
        rec = {
            "ts": time.time(),
            "seq": self.seq,
            "metrics": T.metrics().as_dict(),
        }
        if extra:
            rec.update(extra)
        with open(self.path, "a") as f:
            f.write(json.dumps(rec) + "\n")
        self.seq += 1
        self._last = time.monotonic()
        return self.seq - 1

    def maybe_export(self, extra: dict | None = None) -> bool:
        """Write a snapshot if ``interval`` seconds have elapsed since
        the last one (always writes when ``interval`` is None)."""
        if (
            self.interval is not None
            and time.monotonic() - self._last < self.interval
        ):
            return False
        self.export(extra)
        return True


# ---------------------------------------------------------- stitching


def _linked_ids(trace_id: str, links: dict[str, str]) -> set[str]:
    """The trace ids reachable from ``trace_id``: its ancestors (the
    batches it was solved inside) and every descendant of those."""
    ids = {trace_id}
    # walk up the parent chain
    cur = trace_id
    seen = set()
    while cur in links and cur not in seen:
        seen.add(cur)
        cur = links[cur]
        ids.add(cur)
    # include descendants of anything collected so far (other requests
    # in the same batch are *not* pulled in: only ids whose ancestor
    # chain passes through trace_id itself or its ancestors via the
    # solve side, i.e. children of the batch that are not peers)
    return ids


def stitch_trace(trace_id: str, tracer=None, extra_records=()) -> dict:
    """Reassemble one request's end-to-end trace.

    Collects every ring-buffer event tagged with ``trace_id`` or with
    a trace linked to it (the coalesced batch's solve spans), plus any
    ``extra_records`` (per-rank timeline ``rank_span`` records)
    carrying a matching ``trace`` field.  Returns::

        {"trace": id, "linked": [...], "events": [...],
         "rank_spans": [...], "t_start": ..., "duration": ...}

    Events are ``{"path", "t_start", "duration", "trace"}`` sorted by
    start time on the tracer clock.
    """
    from repro import telemetry as T

    if tracer is None:
        tracer = T.current_tracer()
    if tracer is None:
        return {"trace": trace_id, "linked": [], "events": [],
                "rank_spans": [], "t_start": None, "duration": 0.0}
    ids = _linked_ids(trace_id, tracer.trace_links)
    paths: dict[int, str] = {}

    def visit(node, prefix):
        p = prefix + (node.name,)
        paths[id(node)] = "/".join(p)
        for c in node.children.values():
            visit(c, p)

    for c in tracer.root.children.values():
        visit(c, ())
    events = [
        {
            "path": paths[id(node)],
            "t_start": t0,
            "duration": dt,
            "trace": trace,
        }
        for node, t0, dt, trace in tracer.events
        if trace in ids
    ]
    events.sort(key=lambda e: e["t_start"])
    rank_spans = [
        dict(rec)
        for rec in extra_records
        if rec.get("type") == "rank_span" and rec.get("trace") in ids
    ]
    if events:
        t_start = events[0]["t_start"]
        t_end = max(e["t_start"] + e["duration"] for e in events)
        duration = t_end - t_start
    else:
        t_start, duration = None, 0.0
    return {
        "trace": trace_id,
        "linked": sorted(ids - {trace_id}),
        "events": events,
        "rank_spans": rank_spans,
        "t_start": t_start,
        "duration": duration,
    }


# ---------------------------------------------------------- status file


class StatusFile:
    """Atomically-published JSON status for live monitoring.

    ``repro serve`` writes it after every poll/drain; ``repro top``
    (or anything else) reads it without coordination — the write is
    tmp + ``os.replace`` so a reader never sees a torn file."""

    def __init__(self, path: str):
        self.path = path

    def write(self, payload: dict) -> None:
        rec = {"ts": time.time(), "pid": os.getpid(), **payload}
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            json.dump(rec, f, indent=2, default=str)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self.path)

    def read(self) -> dict | None:
        try:
            with open(self.path) as f:
                return json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            return None


# ------------------------------------------------------ flight recorder


class FlightRecorder:
    """Postmortem dumper: when resilience detects a dead/hung rank or
    a numerical health violation, :meth:`dump` snapshots the last N
    span events, the trace links, and the full metric registry to one
    JSONL artifact — the black box for the fault, no log archaeology.
    """

    def __init__(self, out_dir: str, max_events: int = 512):
        self.out_dir = out_dir
        self.max_events = int(max_events)
        self._seq = itertools.count(1)

    def dump(self, reason: str) -> str:
        from repro import telemetry as T

        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(
            self.out_dir,
            f"flight-{os.getpid()}-{next(self._seq):03d}.jsonl",
        )
        T.sync_dropped_counter()
        tr = T.current_tracer()
        with open(path, "w") as f:
            f.write(
                json.dumps(
                    {
                        "type": "flight_meta",
                        "reason": reason,
                        "ts": time.time(),
                        "pid": os.getpid(),
                        "telemetry_enabled": tr is not None,
                        "dropped_events": (
                            tr.dropped_events if tr is not None else 0
                        ),
                        "trace_context": T.get_trace_context(),
                    }
                )
                + "\n"
            )
            if tr is not None:
                paths: dict[int, str] = {}

                def visit(node, prefix):
                    p = prefix + (node.name,)
                    paths[id(node)] = "/".join(p)
                    for c in node.children.values():
                        visit(c, p)

                for c in tr.root.children.values():
                    visit(c, ())
                tail = list(tr.events)[-self.max_events:]
                for node, t0, dt, trace in tail:
                    rec = {
                        "type": "event",
                        "path": paths[id(node)],
                        "t_start": t0,
                        "duration": dt,
                    }
                    if trace is not None:
                        rec["trace"] = trace
                    f.write(json.dumps(rec) + "\n")
                for child, parent in tr.trace_links.items():
                    f.write(
                        json.dumps(
                            {
                                "type": "trace_link",
                                "trace": child,
                                "parent": parent,
                            }
                        )
                        + "\n"
                    )
            for name, m in T.metrics().as_dict().items():
                f.write(
                    json.dumps(
                        {
                            **m,
                            "metric_type": m["type"],
                            "type": "metric",
                            "name": name,
                        }
                    )
                    + "\n"
                )
        return path


#: the armed recorder, or None — faults are rare, so the failure paths
#: that call :func:`flight_dump` pay one ``is None`` test at most
_flight: FlightRecorder | None = None


def arm_flight_recorder(
    out_dir: str | None, max_events: int = 512
) -> FlightRecorder | None:
    """Arm (or, with ``None``, disarm) the process-wide flight
    recorder; returns it."""
    global _flight
    _flight = (
        None if out_dir is None else FlightRecorder(out_dir, max_events)
    )
    return _flight


def flight_dump(reason: str) -> str | None:
    """Dump the armed flight recorder; returns the artifact path, or
    None when no recorder is armed."""
    if _flight is None:
        return None
    return _flight.dump(reason)


# environment arming: REPRO_FLIGHT_DIR=<dir> arms the recorder at
# import so CI fault matrices collect postmortems without code changes
_env_dir = os.environ.get("REPRO_FLIGHT_DIR", "").strip()
if _env_dir:
    arm_flight_recorder(_env_dir)
del _env_dir
