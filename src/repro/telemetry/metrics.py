"""Named metrics: counters, gauges, histograms, and per-step series.

The :class:`MetricsRegistry` is the single sink for run-level numbers
that are not wall time: flop counts by category, residual norms per CG
iteration, CFL margins, allocation watermarks.  It absorbs the two
pre-telemetry fragments — :class:`repro.util.flops.FlopCounter` is now
a back-compat shim over :class:`CategoryCounter`, and the per-peer
traffic matrix of :class:`repro.parallel.simcomm.TrafficStats` feeds
the registry's report path — so "where did the work go" has one answer.

Samples are gated the same way spans are: :func:`repro.telemetry.
sample` is a no-op while telemetry is disabled, so per-step sampling
costs one ``is None`` test on the hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "CategoryCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Series",
]


@dataclass
class CategoryCounter:
    """Accumulates an extensive quantity by category (the superset of
    the old ``util.flops.FlopCounter`` surface, kept verbatim so the
    shim is a subclass with nothing to do)."""

    counts: dict = field(default_factory=dict)

    def add(self, category: str, amount: int) -> None:
        self.counts[category] = self.counts.get(category, 0) + int(amount)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def merge(self, other: "CategoryCounter") -> None:
        for k, v in other.counts.items():
            self.add(k, v)


class Counter:
    """Monotonic scalar total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (plus the extremes seen)."""

    __slots__ = ("name", "value", "min", "max", "n")

    def __init__(self, name: str):
        self.name = name
        self.value = None
        self.min = math.inf
        self.max = -math.inf
        self.n = 0

    def set(self, value) -> None:
        value = float(value)
        self.value = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.n += 1

    def as_dict(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "min": None if self.n == 0 else self.min,
            "max": None if self.n == 0 else self.max,
            "n": self.n,
        }


class Histogram:
    """Streaming moments + extremes + quantiles.

    Up to :data:`EXACT_CAP` samples are kept verbatim, so service-scale
    populations (thousands of request latencies) get *exact* p50/p95/
    p99.  Past the cap the kept samples stop growing and observations
    fall into log2 magnitude buckets (one per binary exponent — bounded
    memory for any value range), from which quantiles are interpolated
    geometrically; worst-case error is the bucket width (~2x), which is
    the right trade for a metric that only feeds dashboards."""

    EXACT_CAP = 4096

    __slots__ = ("name", "n", "sum", "sumsq", "min", "max",
                 "samples", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.n = 0
        self.sum = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.samples: list[float] = []
        self.buckets: dict[int, int] | None = None

    def observe(self, value) -> None:
        value = float(value)
        self.n += 1
        self.sum += value
        self.sumsq += value * value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self.buckets is None:
            self.samples.append(value)
            if len(self.samples) > self.EXACT_CAP:
                # spill everything kept so far into buckets and stop
                # holding raw samples
                self.buckets = {}
                for v in self.samples:
                    b = self._bucket(v)
                    self.buckets[b] = self.buckets.get(b, 0) + 1
                self.samples = []
        else:
            b = self._bucket(value)
            self.buckets[b] = self.buckets.get(b, 0) + 1

    @staticmethod
    def _bucket(value: float) -> int:
        # binary exponent of |value|; 0 and subnormal-small map to a
        # sentinel floor bucket
        a = abs(value)
        if a < 1e-300:
            return -1024
        return math.frexp(a)[1]

    @property
    def mean(self) -> float:
        return self.sum / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        var = max(self.sumsq / self.n - self.mean**2, 0.0)
        return math.sqrt(var)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) of everything observed —
        exact (linear interpolation between order statistics) while
        under :data:`EXACT_CAP` samples, bucket-interpolated beyond."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        if self.buckets is None:
            xs = sorted(self.samples)
            pos = q * (len(xs) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(xs) - 1)
            frac = pos - lo
            return xs[lo] * (1.0 - frac) + xs[hi] * frac
        # bucketed: walk cumulative counts, interpolate inside the
        # bucket geometrically between its bounds [2^(e-1), 2^e), and
        # clamp to the exact extremes (still tracked past the cap)
        target = q * self.n
        acc = 0
        for e in sorted(self.buckets):
            cnt = self.buckets[e]
            if acc + cnt >= target:
                if e == -1024:
                    return 0.0
                lo_edge = math.ldexp(1.0, e - 1)
                hi_edge = math.ldexp(1.0, e)
                frac = (target - acc) / cnt
                est = lo_edge + frac * (hi_edge - lo_edge)
                return min(max(est, self.min), self.max)
            acc += cnt
        return self.max

    def as_dict(self) -> dict:
        d = {
            "type": "histogram",
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": None if self.n == 0 else self.min,
            "max": None if self.n == 0 else self.max,
        }
        if self.n:
            d["p50"] = self.quantile(0.50)
            d["p95"] = self.quantile(0.95)
            d["p99"] = self.quantile(0.99)
        return d


class Series:
    """Ordered ``(step, value)`` samples — convergence histories,
    per-step residual norms, allocation watermarks."""

    __slots__ = ("name", "steps", "values")

    def __init__(self, name: str):
        self.name = name
        self.steps: list = []
        self.values: list[float] = []

    def append(self, value, step=None) -> None:
        self.steps.append(len(self.steps) if step is None else step)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def as_dict(self) -> dict:
        return {
            "type": "series",
            "steps": list(self.steps),
            "values": list(self.values),
        }


class MetricsRegistry:
    """Find-or-create registry of named metrics."""

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = cls(name)
        elif not isinstance(m, cls):
            raise TypeError(
                f"metric {name!r} is a {type(m).__name__}, "
                f"not a {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        return self._get(name, Series)

    def absorb_flops(self, flops: CategoryCounter, prefix: str = "flops") -> None:
        """Fold a category counter (e.g. a solver's ``.flops``) into
        ``<prefix>.<category>`` counters."""
        for cat, n in flops.counts.items():
            self.counter(f"{prefix}.{cat}").add(n)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def reset(self) -> None:
        self._metrics.clear()

    def as_dict(self) -> dict:
        return {
            name: m.as_dict() for name, m in sorted(self._metrics.items())
        }
