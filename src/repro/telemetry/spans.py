"""Hierarchical tracing spans with near-zero disabled overhead.

The solvers' fused time loops are zero-allocation by contract, so the
instrumentation has to be free when it is off: :func:`span` is gated on
a single module-level reference (``_tracer``) and returns a shared
no-op singleton when telemetry is disabled — one attribute load, one
``is None`` test, no object construction.  Hot paths therefore call
``span("name")`` with a literal (no kwargs dict is built) and attach
counters through :func:`add`, which performs the same cheap gate.

When enabled, spans nest through a stack and *aggregate*: entering the
same name under the same parent accumulates wall seconds and a call
count into one :class:`SpanStats` node instead of growing a list, so a
100 000-step loop costs O(1) memory.  A bounded event stream records
individual ``(path, start, duration)`` intervals for the JSONL trace
export; when the cap is hit, further events are counted as dropped
rather than silently lost.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterator

__all__ = [
    "SpanStats",
    "Tracer",
    "add",
    "annotate",
    "current_tracer",
    "disable",
    "enable",
    "enabled",
    "span",
]


class _NullSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, value) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class SpanStats:
    """Aggregated statistics of one span path in the trace tree."""

    __slots__ = ("name", "depth", "seconds", "count", "counters", "children")

    def __init__(self, name: str, depth: int):
        self.name = name
        self.depth = depth
        self.seconds = 0.0
        self.count = 0
        self.counters: dict[str, float] = {}
        self.children: dict[str, "SpanStats"] = {}

    def child(self, name: str) -> "SpanStats":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanStats(name, self.depth + 1)
        return node

    def add_counter(self, counter: str, value) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + value

    def walk(self) -> Iterator["SpanStats"]:
        yield self
        for c in self.children.values():
            yield from c.walk()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "depth": self.depth,
            "seconds": self.seconds,
            "count": self.count,
            "counters": dict(self.counters),
            "children": [c.as_dict() for c in self.children.values()],
        }


class _Span:
    """Active span context manager; one per ``with`` entry, bound to
    its aggregate node."""

    __slots__ = ("_tracer", "_node", "_t0")

    def __init__(self, tracer: "Tracer", node: SpanStats):
        self._tracer = tracer
        self._node = node
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._node)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        dt = t1 - self._t0
        node = self._node
        node.seconds += dt
        node.count += 1
        tr = self._tracer
        tr._stack.pop()
        if len(tr.events) < tr.max_events:
            tr.events.append((node, self._t0 - tr.t_origin, dt))
        else:
            tr.dropped_events += 1
        return False

    def add(self, counter: str, value) -> "_Span":
        self._node.add_counter(counter, value)
        return self


class Tracer:
    """Span collector: aggregate tree + bounded event stream."""

    def __init__(self, max_events: int = 65536):
        self.root = SpanStats("<root>", -1)
        self.max_events = int(max_events)
        self.events: list[tuple[SpanStats, float, float]] = []
        self.dropped_events = 0
        self.t_origin = time.perf_counter()
        self._stack: list[SpanStats] = [self.root]

    # --------------------------------------------------------- recording

    def span(self, name: str, attrs: dict | None = None) -> _Span:
        node = self._stack[-1].child(name)
        if attrs:
            for k, v in attrs.items():
                node.add_counter(k, v)
        return _Span(self, node)

    def add(self, counter: str, value) -> None:
        """Attach ``value`` to the innermost open span (or the root)."""
        self._stack[-1].add_counter(counter, value)

    def annotate(self, path: tuple[str, ...], counter: str, value) -> None:
        """Attach a counter to the span at ``path`` (created if absent)
        without opening it — used to attribute totals post hoc."""
        node = self.root
        for name in path:
            node = node.child(name)
        node.add_counter(counter, value)

    # --------------------------------------------------------- reporting

    def _path_of(self, target: SpanStats) -> str:
        # paths are only needed at export time; recompute by walking
        found = {}

        def visit(node, prefix):
            path = prefix + (node.name,) if node.depth >= 0 else ()
            found[id(node)] = "/".join(path)
            for c in node.children.values():
                visit(c, path)

        visit(self.root, ())
        return found[id(target)]

    def aggregates(self) -> list[dict]:
        """Flattened span tree in depth-first order, root excluded."""
        out = []

        def visit(node, prefix):
            path = prefix + (node.name,)
            out.append(
                {
                    "path": "/".join(path),
                    "name": node.name,
                    "depth": node.depth,
                    "seconds": node.seconds,
                    "count": node.count,
                    "counters": dict(node.counters),
                }
            )
            for c in node.children.values():
                visit(c, path)

        for c in self.root.children.values():
            visit(c, ())
        return out

    def dump_jsonl(self, path: str, *, extra_records=()) -> int:
        """Write the trace as JSON lines: one ``meta`` record, one
        ``span`` record per aggregate node, one ``event`` record per
        recorded interval, plus any ``extra_records`` (e.g. per-rank
        timeline spans).  Returns the number of lines written."""
        paths = {}

        def visit(node, prefix):
            p = prefix + (node.name,)
            paths[id(node)] = "/".join(p)
            for c in node.children.values():
                visit(c, p)

        for c in self.root.children.values():
            visit(c, ())
        n = 0
        with open(path, "w") as f:
            f.write(
                json.dumps(
                    {
                        "type": "meta",
                        "dropped_events": self.dropped_events,
                        "pid": os.getpid(),
                    }
                )
                + "\n"
            )
            n += 1
            for agg in self.aggregates():
                f.write(json.dumps({"type": "span", **agg}) + "\n")
                n += 1
            for node, t0, dt in self.events:
                f.write(
                    json.dumps(
                        {
                            "type": "event",
                            "path": paths[id(node)],
                            "t_start": t0,
                            "duration": dt,
                        }
                    )
                    + "\n"
                )
                n += 1
            for rec in extra_records:
                f.write(json.dumps(rec) + "\n")
                n += 1
        return n


#: the active tracer; ``None`` means telemetry is disabled and every
#: hot-path call short-circuits on this single reference
_tracer: Tracer | None = None


def enabled() -> bool:
    return _tracer is not None


def enable(*, max_events: int = 65536, fresh: bool = True) -> Tracer:
    """Turn telemetry on; returns the active tracer.  ``fresh`` starts
    a new trace (the default); ``fresh=False`` keeps an existing one."""
    global _tracer
    if _tracer is None or fresh:
        _tracer = Tracer(max_events=max_events)
    return _tracer


def disable() -> None:
    global _tracer
    _tracer = None


def current_tracer() -> Tracer | None:
    return _tracer


def span(name: str, **attrs):
    """Open a tracing span (``with span("stiffness"): ...``).

    Disabled: returns the no-op singleton — call with a literal name
    and no kwargs on hot paths so no argument dict is built."""
    tr = _tracer
    if tr is None:
        return _NULL_SPAN
    return tr.span(name, attrs or None)


def add(counter: str, value) -> None:
    """Accumulate ``value`` into ``counter`` on the innermost open
    span.  No-op (one ``is None`` test) when telemetry is disabled."""
    tr = _tracer
    if tr is not None:
        tr.add(counter, value)


def annotate(path: tuple[str, ...], counter: str, value) -> None:
    """Post-hoc counter attribution to a span path (see
    :meth:`Tracer.annotate`); no-op when disabled."""
    tr = _tracer
    if tr is not None:
        tr.annotate(path, counter, value)


# environment opt-in: REPRO_TELEMETRY=1 enables tracing at import
if os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
    "1",
    "true",
    "on",
    "yes",
):
    enable()
