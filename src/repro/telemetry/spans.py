"""Hierarchical tracing spans with near-zero disabled overhead.

The solvers' fused time loops are zero-allocation by contract, so the
instrumentation has to be free when it is off: :func:`span` is gated on
a single module-level reference (``_tracer``) and returns a shared
no-op singleton when telemetry is disabled — one attribute load, one
``is None`` test, no object construction.  Hot paths therefore call
``span("name")`` with a literal (no kwargs dict is built) and attach
counters through :func:`add`, which performs the same cheap gate.

When enabled, spans nest through a stack and *aggregate*: entering the
same name under the same parent accumulates wall seconds and a call
count into one :class:`SpanStats` node instead of growing a list, so a
100 000-step loop costs O(1) memory.  A bounded event stream records
individual ``(path, start, duration)`` intervals for the JSONL trace
export; when the cap is hit, further events are counted as dropped
rather than silently lost.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from typing import Iterator

__all__ = [
    "SpanStats",
    "Tracer",
    "add",
    "annotate",
    "current_tracer",
    "disable",
    "enable",
    "enabled",
    "get_trace_context",
    "new_trace_id",
    "set_trace_context",
    "span",
    "trace_context",
]


class _NullSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, counter: str, value) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


# ------------------------------------------------------- trace context
#
# A *trace id* names one request end to end: the scheduler mints one
# per submitted job, the service sets it as the ambient context around
# the solve, and every recorded span event (plus the per-rank
# timelines, which ship it through the ProcWorld pipe protocol) is
# tagged with it — so the exporter can stitch queue wait, coalescing
# window, solve phases, and demux back into one per-request trace.
# The context is independent of whether telemetry is enabled: worker
# processes run with telemetry off but still need to label the
# timelines they return.

_trace_seq = itertools.count(1)
_TRACE_CTX: str | None = None


def new_trace_id() -> str:
    """Mint a process-unique trace id (pid-qualified so ids minted by
    different serve processes sharing one spool never collide)."""
    return f"t{os.getpid():x}-{next(_trace_seq):06x}"


def set_trace_context(trace_id: str | None) -> str | None:
    """Set the ambient trace id; returns the previous one (restore it
    when done, or use the :func:`trace_context` manager)."""
    global _TRACE_CTX
    prev = _TRACE_CTX
    _TRACE_CTX = trace_id
    return prev


def get_trace_context() -> str | None:
    """The ambient trace id, or None outside any request."""
    return _TRACE_CTX


class trace_context:
    """``with trace_context("t1-0001"): ...`` — span events recorded
    inside the block are tagged with the id; nesting restores the
    outer id on exit.  ``None`` clears the context for the block."""

    __slots__ = ("_trace_id", "_prev")

    def __init__(self, trace_id: str | None):
        self._trace_id = trace_id
        self._prev = None

    def __enter__(self) -> "trace_context":
        self._prev = set_trace_context(self._trace_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_trace_context(self._prev)
        return False


class SpanStats:
    """Aggregated statistics of one span path in the trace tree."""

    __slots__ = ("name", "depth", "seconds", "count", "counters", "children")

    def __init__(self, name: str, depth: int):
        self.name = name
        self.depth = depth
        self.seconds = 0.0
        self.count = 0
        self.counters: dict[str, float] = {}
        self.children: dict[str, "SpanStats"] = {}

    def child(self, name: str) -> "SpanStats":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanStats(name, self.depth + 1)
        return node

    def add_counter(self, counter: str, value) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + value

    def walk(self) -> Iterator["SpanStats"]:
        yield self
        for c in self.children.values():
            yield from c.walk()

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "depth": self.depth,
            "seconds": self.seconds,
            "count": self.count,
            "counters": dict(self.counters),
            "children": [c.as_dict() for c in self.children.values()],
        }


class _Span:
    """Active span context manager; one per ``with`` entry, bound to
    its aggregate node."""

    __slots__ = ("_tracer", "_node", "_t0")

    def __init__(self, tracer: "Tracer", node: SpanStats):
        self._tracer = tracer
        self._node = node
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._node)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        dt = t1 - self._t0
        node = self._node
        node.seconds += dt
        node.count += 1
        tr = self._tracer
        tr._stack.pop()
        events = tr.events
        if len(events) >= tr.max_events:
            # ring semantics: evict the oldest so the stream always
            # holds the most recent window (what a postmortem wants),
            # and count the eviction instead of losing it silently
            events.popleft()
            tr.dropped_events += 1
        events.append((node, self._t0 - tr.t_origin, dt, _TRACE_CTX))
        return False

    def add(self, counter: str, value) -> "_Span":
        self._node.add_counter(counter, value)
        return self


class Tracer:
    """Span collector: aggregate tree + bounded event stream."""

    def __init__(self, max_events: int = 65536):
        self.root = SpanStats("<root>", -1)
        self.max_events = int(max_events)
        # ring buffer of (node, t_start_rel, duration, trace_id) — the
        # oldest interval is evicted (and counted) once the cap is hit
        self.events: deque[tuple[SpanStats, float, float, str | None]] = deque()
        self.dropped_events = 0
        self.trace_links: dict[str, str] = {}
        self.t_origin = time.perf_counter()
        self._stack: list[SpanStats] = [self.root]

    # --------------------------------------------------------- recording

    def span(self, name: str, attrs: dict | None = None) -> _Span:
        node = self._stack[-1].child(name)
        if attrs:
            for k, v in attrs.items():
                node.add_counter(k, v)
        return _Span(self, node)

    def add(self, counter: str, value) -> None:
        """Attach ``value`` to the innermost open span (or the root)."""
        self._stack[-1].add_counter(counter, value)

    def annotate(self, path: tuple[str, ...], counter: str, value) -> None:
        """Attach a counter to the span at ``path`` (created if absent)
        without opening it — used to attribute totals post hoc."""
        node = self.root
        for name in path:
            node = node.child(name)
        node.add_counter(counter, value)

    def record_event(
        self,
        path: tuple[str, ...],
        t_start: float,
        duration: float,
        *,
        trace_id: str | None = None,
        counters: dict | None = None,
    ) -> None:
        """Record an interval measured outside a ``with span`` block
        (e.g. queue wait reconstructed from an enqueue timestamp, or a
        recovery window around a respawn).  ``t_start`` is an absolute
        ``time.perf_counter()`` reading; the aggregate node at ``path``
        accumulates it like a normal span entry."""
        node = self.root
        for name in path:
            node = node.child(name)
        node.seconds += duration
        node.count += 1
        if counters:
            for k, v in counters.items():
                node.add_counter(k, v)
        events = self.events
        if len(events) >= self.max_events:
            events.popleft()
            self.dropped_events += 1
        if trace_id is None:
            trace_id = _TRACE_CTX
        events.append((node, t_start - self.t_origin, duration, trace_id))

    def link_trace(self, child: str, parent: str) -> None:
        """Declare that trace ``child`` was carried out inside trace
        ``parent`` (a request solved within a coalesced batch).  The
        stitcher follows these links so a request's trace includes the
        batch's solve spans and per-rank phase split."""
        self.trace_links[child] = parent

    # --------------------------------------------------------- reporting

    def _path_of(self, target: SpanStats) -> str:
        # paths are only needed at export time; recompute by walking
        found = {}

        def visit(node, prefix):
            path = prefix + (node.name,) if node.depth >= 0 else ()
            found[id(node)] = "/".join(path)
            for c in node.children.values():
                visit(c, path)

        visit(self.root, ())
        return found[id(target)]

    def aggregates(self) -> list[dict]:
        """Flattened span tree in depth-first order, root excluded."""
        out = []

        def visit(node, prefix):
            path = prefix + (node.name,)
            out.append(
                {
                    "path": "/".join(path),
                    "name": node.name,
                    "depth": node.depth,
                    "seconds": node.seconds,
                    "count": node.count,
                    "counters": dict(node.counters),
                }
            )
            for c in node.children.values():
                visit(c, path)

        for c in self.root.children.values():
            visit(c, ())
        return out

    def dump_jsonl(self, path: str, *, extra_records=()) -> int:
        """Write the trace as JSON lines: one ``meta`` record, one
        ``span`` record per aggregate node, one ``event`` record per
        recorded interval, plus any ``extra_records`` (e.g. per-rank
        timeline spans).  Returns the number of lines written."""
        paths = {}

        def visit(node, prefix):
            p = prefix + (node.name,)
            paths[id(node)] = "/".join(p)
            for c in node.children.values():
                visit(c, p)

        for c in self.root.children.values():
            visit(c, ())
        n = 0
        with open(path, "w") as f:
            f.write(
                json.dumps(
                    {
                        "type": "meta",
                        "dropped_events": self.dropped_events,
                        "pid": os.getpid(),
                    }
                )
                + "\n"
            )
            n += 1
            for agg in self.aggregates():
                f.write(json.dumps({"type": "span", **agg}) + "\n")
                n += 1
            for node, t0, dt, trace in self.events:
                rec = {
                    "type": "event",
                    "path": paths[id(node)],
                    "t_start": t0,
                    "duration": dt,
                }
                if trace is not None:
                    rec["trace"] = trace
                f.write(json.dumps(rec) + "\n")
                n += 1
            for child, parent in self.trace_links.items():
                f.write(
                    json.dumps(
                        {"type": "trace_link", "trace": child, "parent": parent}
                    )
                    + "\n"
                )
                n += 1
            for rec in extra_records:
                f.write(json.dumps(rec) + "\n")
                n += 1
        return n


#: the active tracer; ``None`` means telemetry is disabled and every
#: hot-path call short-circuits on this single reference
_tracer: Tracer | None = None


def enabled() -> bool:
    return _tracer is not None


def enable(*, max_events: int = 65536, fresh: bool = True) -> Tracer:
    """Turn telemetry on; returns the active tracer.  ``fresh`` starts
    a new trace (the default); ``fresh=False`` keeps an existing one."""
    global _tracer
    if _tracer is None or fresh:
        _tracer = Tracer(max_events=max_events)
    return _tracer


def disable() -> None:
    global _tracer
    _tracer = None


def current_tracer() -> Tracer | None:
    return _tracer


def span(name: str, **attrs):
    """Open a tracing span (``with span("stiffness"): ...``).

    Disabled: returns the no-op singleton — call with a literal name
    and no kwargs on hot paths so no argument dict is built."""
    tr = _tracer
    if tr is None:
        return _NULL_SPAN
    return tr.span(name, attrs or None)


def add(counter: str, value) -> None:
    """Accumulate ``value`` into ``counter`` on the innermost open
    span.  No-op (one ``is None`` test) when telemetry is disabled."""
    tr = _tracer
    if tr is not None:
        tr.add(counter, value)


def annotate(path: tuple[str, ...], counter: str, value) -> None:
    """Post-hoc counter attribution to a span path (see
    :meth:`Tracer.annotate`); no-op when disabled."""
    tr = _tracer
    if tr is not None:
        tr.annotate(path, counter, value)


# environment opt-in: REPRO_TELEMETRY=1 enables tracing at import
if os.environ.get("REPRO_TELEMETRY", "").strip().lower() in (
    "1",
    "true",
    "on",
    "yes",
):
    enable()
