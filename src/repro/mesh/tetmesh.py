"""Tetrahedral baseline meshes.

The Quake group's earlier earthquake codes were based on linear
tetrahedral finite elements (paper Section 2); the hexahedral code is
verified against them in Figure 2.4.  We reproduce the baseline by
splitting each hexahedron of a *conforming* (no hanging nodes) hex mesh
into six tetrahedra with a globally consistent diagonal so neighboring
elements match across faces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.hexmesh import HexMesh

# Six-tet decomposition of the unit hex with corners in Morton order
# (0..7 <-> (x, y, z) bits).  All tets share the main diagonal 0-7, so
# any two hexes meeting at a face agree on the face diagonals.
_TET_SPLIT = np.array(
    [
        [0, 1, 3, 7],
        [0, 3, 2, 7],
        [0, 2, 6, 7],
        [0, 6, 4, 7],
        [0, 4, 5, 7],
        [0, 5, 1, 7],
    ],
    dtype=np.int64,
)


@dataclass
class TetMesh:
    """Linear tetrahedral mesh sharing the parent hex mesh's nodes."""

    conn: np.ndarray  # (ntet, 4) node indices
    coords: np.ndarray  # (nnode, 3) physical coordinates, meters
    parent_hex: np.ndarray  # (ntet,) index of the hex each tet came from

    @property
    def nelem(self) -> int:
        return len(self.conn)

    @property
    def nnode(self) -> int:
        return len(self.coords)

    def volumes(self) -> np.ndarray:
        """Signed tet volumes (positive for the standard split)."""
        p = self.coords[self.conn]
        a = p[:, 1] - p[:, 0]
        b = p[:, 2] - p[:, 0]
        c = p[:, 3] - p[:, 0]
        return np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0


def hex_to_tet_mesh(mesh: HexMesh, *, require_conforming: bool = True) -> TetMesh:
    """Split every hex into 6 tets.

    Parameters
    ----------
    mesh:
        Source hex mesh.  Must be conforming (uniform refinement level)
        unless ``require_conforming`` is False — the tetrahedral code
        has no hanging-node machinery, mirroring the paper's baseline,
        whose mesh generator could not reach 1 Hz resolutions.
    """
    if require_conforming and len(np.unique(mesh.elem_level)) > 1:
        raise ValueError(
            "tetrahedral baseline requires a conforming (uniform) mesh; "
            "generate one with uniform_hex_mesh or a constant target size"
        )
    ntet = mesh.nelem * 6
    conn = mesh.conn[:, _TET_SPLIT].reshape(ntet, 4)
    parent = np.repeat(np.arange(mesh.nelem), 6)
    return TetMesh(conn=conn, coords=mesh.coords, parent_hex=parent)
