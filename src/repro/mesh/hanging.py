"""Hanging grid points and the displacement continuity constraints.

On a 2-to-1 balanced octree mesh, a grid point that belongs to refined
elements but not to an unrefined neighbor is *hanging*.  Continuity of
the trilinear displacement approximation requires (paper Section 2.2):

* a hanging **edge-midside** value equals the average of the two
  non-hanging edge-endpoint neighbors (weights 1/2);
* a hanging **mid-face** value equals the average of the four
  non-hanging face-corner neighbors (weights 1/4).

These constraints are expressed as ``u = B ubar`` with ``ubar`` the
values at independent (non-hanging) grid points; ``B`` has a 1 on the
diagonal block for independent points and rows of 1/2 or 1/4 weights for
hanging points.  Constraint chains (a master that itself hangs on an
even coarser element) are resolved transitively, so every retained
master is independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.mesh.hexmesh import CORNER_OFFSETS, HexMesh
from repro.octree.linear_octree import LinearOctree


@dataclass
class HangingNodeInfo:
    """Constraint structure of a mesh.

    Attributes
    ----------
    hanging:
        Boolean mask over mesh nodes, True where the node hangs.
    independent:
        Indices of the independent (non-hanging) nodes; their position
        defines the column ordering of ``B``.
    B:
        Sparse ``(nnode, n_independent)`` CSR constraint matrix with
        ``u = B @ ubar``.
    masters / weights:
        Ragged per-hanging-node master lists (list of ``(node, weight)``
        arrays), after transitive resolution.
    """

    hanging: np.ndarray
    independent: np.ndarray
    B: sp.csr_matrix
    masters: dict

    @property
    def n_hanging(self) -> int:
        return int(np.sum(self.hanging))


def _incident_leaves(tree: LinearOctree, node_ticks: np.ndarray) -> list[np.ndarray]:
    """For every node, the distinct leaves whose closure touches it.

    We probe the 8 cells around the lattice point by offsetting the
    query by 0 or -1 tick per axis; :meth:`LinearOctree.locate` returns
    the containing leaf (or -1 off-domain).
    """
    n = len(node_ticks)
    found = np.full((n, 8), -1, dtype=np.int64)
    for k in range(8):
        off = -CORNER_OFFSETS[7 - k]  # offsets in {-1, 0}^3
        pts = node_ticks + off
        found[:, k] = tree.locate(pts)
    return found


def build_constraints(tree: LinearOctree, mesh: HexMesh) -> HangingNodeInfo:
    """Detect hanging nodes of ``mesh`` and build the constraint matrix.

    ``tree`` must be the balanced octree the mesh was extracted from.
    """
    nodes = mesh.node_ticks
    nnode = len(nodes)
    incident = _incident_leaves(tree, nodes)

    # a node hangs iff some incident leaf does not have it as a corner
    hanging = np.zeros(nnode, dtype=bool)

    # Collect, per node, the coarsest incident leaf for which the node
    # is not a corner.  Vectorized test: relative coords in {0, size}
    # componentwise <=> corner.
    anchors = tree.anchors
    sizes = tree.sizes
    for k in range(8):
        idx = incident[:, k]
        ok = idx >= 0
        if not np.any(ok):
            continue
        leaf = idx[ok]
        rel = nodes[ok] - anchors[leaf]
        s = sizes[leaf]
        is_corner = np.all((rel == 0) | (rel == s[:, None]), axis=1)
        viol = np.nonzero(ok)[0][~is_corner]
        if len(viol) == 0:
            continue
        hanging[viol] = True

    # masters: for each hanging node take any incident leaf of which it
    # is not a corner (with 2-to-1 balance there is exactly one coarse
    # host, possibly seen from several probes) and read off the edge /
    # face interpolation stencil
    masters: dict[int, dict[int, float]] = {}
    hang_idx = np.nonzero(hanging)[0]
    for i in hang_idx:
        host = -1
        for k in range(8):
            li = incident[i, k]
            if li < 0:
                continue
            rel = nodes[i] - anchors[li]
            s = sizes[li]
            if not np.all((rel == 0) | (rel == s)):
                host = li
                break
        assert host >= 0
        a, s = anchors[host], int(sizes[host])
        rel = nodes[i] - a
        mid_axes = np.nonzero(rel == s // 2)[0]
        fixed = {ax: int(rel[ax]) for ax in range(3) if ax not in mid_axes}
        if len(mid_axes) == 1:
            choices = [(0,), (s,)]
            w = 0.5
        elif len(mid_axes) == 2:
            choices = [(0, 0), (0, s), (s, 0), (s, s)]
            w = 0.25
        else:  # pragma: no cover - impossible on balanced trees
            raise RuntimeError("node at element center cannot be a grid point")
        stencil: dict[int, float] = {}
        for ch in choices:
            p = a.copy()
            for ax, v in fixed.items():
                p[ax] += v
            for ax, v in zip(mid_axes, ch):
                p[ax] += v
            stencil_key = _node_index(mesh, p)
            stencil[stencil_key] = stencil.get(stencil_key, 0.0) + w
        masters[int(i)] = stencil

    # transitive resolution: replace hanging masters by their masters
    for _ in range(4):
        changed = False
        for i, st in masters.items():
            if any(hanging[j] for j in st):
                new: dict[int, float] = {}
                for j, w in st.items():
                    if hanging[j]:
                        for jj, ww in masters[int(j)].items():
                            new[jj] = new.get(jj, 0.0) + w * ww
                    else:
                        new[j] = new.get(j, 0.0) + w
                masters[i] = new
                changed = True
        if not changed:
            break
    else:  # pragma: no cover
        raise RuntimeError("constraint chains did not resolve")

    independent = np.nonzero(~hanging)[0]
    col_of = np.full(nnode, -1, dtype=np.int64)
    col_of[independent] = np.arange(len(independent))

    rows, cols, vals = [], [], []
    rows.extend(independent)
    cols.extend(col_of[independent])
    vals.extend(np.ones(len(independent)))
    for i, st in masters.items():
        for j, w in st.items():
            rows.append(i)
            cols.append(col_of[j])
            vals.append(w)
    B = sp.csr_matrix(
        (vals, (rows, cols)), shape=(nnode, len(independent))
    )
    return HangingNodeInfo(
        hanging=hanging, independent=independent, B=B, masters=masters
    )


def _node_index(mesh: HexMesh, ticks: np.ndarray) -> int:
    """Index of the mesh node at integer coordinates ``ticks``."""
    from repro.octree.morton import morton_encode

    if not hasattr(mesh, "_node_code_cache"):
        codes = morton_encode(
            mesh.node_ticks[:, 0], mesh.node_ticks[:, 1], mesh.node_ticks[:, 2]
        )
        order = np.argsort(codes)
        object.__setattr__(mesh, "_node_code_cache", (codes[order], order))
    codes_sorted, order = mesh._node_code_cache
    code = morton_encode(ticks[0], ticks[1], ticks[2])
    k = int(np.searchsorted(codes_sorted, code))
    if k >= len(codes_sorted) or codes_sorted[k] != code:
        raise KeyError(f"no mesh node at {ticks}")
    return int(order[k])
