"""Hexahedral mesh extraction from balanced octrees.

Each octree leaf becomes one trilinear hexahedral element.  The local
node ordering matches the Morton child order — node ``k`` sits at corner
``(k & 1, (k >> 1) & 1, (k >> 2) & 1)`` of the element — which is also
the ordering the reference element matrices in :mod:`repro.fem` use.

Coordinates: the octree root cube is the physical cube ``[0, L]^3``
with the *z* axis pointing down into the earth; the free surface is the
``z = 0`` plane and the truncation (absorbing) boundaries are the four
vertical faces and the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.octree.linear_octree import LinearOctree, _binary_fraction_ticks
from repro.octree.morton import MAX_COORD, morton_encode

#: local corner offsets of a hex element, Morton order
CORNER_OFFSETS = np.array(
    [(k & 1, (k >> 1) & 1, (k >> 2) & 1) for k in range(8)], dtype=np.int64
)

#: local node indices of the 6 faces keyed by (axis, side):
#: face (axis a, side 0) lies on the element's min-a plane
FACES = {
    (0, 0): np.array([0, 2, 4, 6]),
    (0, 1): np.array([1, 3, 5, 7]),
    (1, 0): np.array([0, 1, 4, 5]),
    (1, 1): np.array([2, 3, 6, 7]),
    (2, 0): np.array([0, 1, 2, 3]),
    (2, 1): np.array([4, 5, 6, 7]),
}


@dataclass
class HexMesh:
    """An unstructured multiresolution hexahedral mesh.

    Attributes
    ----------
    conn:
        ``(nelem, 8)`` int node indices in Morton corner order.
    node_ticks:
        ``(nnode, 3)`` integer lattice coordinates.
    elem_anchor / elem_size / elem_level:
        per-element anchors (ticks), edge lengths (ticks), octree levels.
    L:
        Physical edge length of the root cube (meters).
    box_ticks:
        Extent of the meshed box in ticks per axis.
    """

    conn: np.ndarray
    node_ticks: np.ndarray
    elem_anchor: np.ndarray
    elem_size: np.ndarray
    elem_level: np.ndarray
    L: float
    box_ticks: np.ndarray

    @property
    def nelem(self) -> int:
        return len(self.conn)

    @property
    def nnode(self) -> int:
        return len(self.node_ticks)

    @property
    def coords(self) -> np.ndarray:
        """Physical node coordinates, meters, shape ``(nnode, 3)``."""
        return self.node_ticks * (self.L / MAX_COORD)

    @property
    def elem_h(self) -> np.ndarray:
        """Physical element edge lengths, meters."""
        return self.elem_size * (self.L / MAX_COORD)

    @property
    def elem_centers(self) -> np.ndarray:
        """Physical element centers, meters, shape ``(nelem, 3)``."""
        return (self.elem_anchor + 0.5 * self.elem_size[:, None]) * (
            self.L / MAX_COORD
        )

    @property
    def box_lengths(self) -> np.ndarray:
        """Physical extents of the meshed box, meters."""
        return self.box_ticks * (self.L / MAX_COORD)

    def content_digest(self) -> str:
        """Stable hex digest of the full mesh content (connectivity,
        lattice coordinates, element metadata) — the identity check
        the service's artifact cache uses to assert that a cached or
        disk-loaded mesh is exactly the one a fresh build produces."""
        import hashlib

        h = hashlib.blake2b(digest_size=20)
        for a in (
            self.conn,
            self.node_ticks,
            self.elem_anchor,
            self.elem_size,
            self.elem_level,
            np.asarray(self.box_ticks),
        ):
            h.update(np.ascontiguousarray(a).tobytes())
        h.update(repr(float(self.L)).encode())
        return h.hexdigest()

    def boundary_faces(self, axis: int, side: int) -> tuple[np.ndarray, np.ndarray]:
        """Element faces lying exactly on a box boundary plane.

        Parameters
        ----------
        axis, side:
            ``axis`` in {0, 1, 2}; ``side`` 0 for the min plane (e.g.
            ``z = 0``, the free surface) or 1 for the max plane.

        Returns
        -------
        (elem_idx, face_nodes):
            indices of boundary elements and their ``(n, 4)`` global
            face-node indices.
        """
        if side == 0:
            on = self.elem_anchor[:, axis] == 0
        else:
            on = self.elem_anchor[:, axis] + self.elem_size == self.box_ticks[axis]
        idx = np.nonzero(on)[0]
        local = FACES[(axis, side)]
        return idx, self.conn[np.ix_(idx, local)]

    def surface_nodes(self, axis: int, side: int) -> np.ndarray:
        """Unique node indices on a boundary plane."""
        plane = 0 if side == 0 else self.box_ticks[axis]
        return np.nonzero(self.node_ticks[:, axis] == plane)[0]


def extract_mesh(
    tree: LinearOctree,
    *,
    L: float = 1.0,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
) -> HexMesh:
    """Derive the element-node relation and node coordinates from a
    (balanced) linear octree — the paper's *transform* step.

    Node ids are assigned in Morton order of the node coordinates, so
    numbering is deterministic and spatially local (cache-friendly
    gathers in the element-based matvec).
    """
    anchors = tree.anchors
    sizes = tree.sizes
    corners = anchors[:, None, :] + CORNER_OFFSETS[None, :, :] * sizes[:, None, None]
    corners = corners.reshape(-1, 3)
    # unique node numbering via Morton codes of corner coordinates;
    # corners can sit at MAX_COORD (domain max), so encode on a lattice
    # shifted by nothing — morton supports up to 2^21 per axis, and
    # MAX_COORD = 2^16 keeps codes well in range
    codes = morton_encode(corners[:, 0], corners[:, 1], corners[:, 2])
    unique_codes, first, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    conn = inverse.reshape(len(anchors), 8)
    node_ticks = corners[first]
    box_ticks = np.array([_binary_fraction_ticks(f) for f in box_frac])
    return HexMesh(
        conn=conn,
        node_ticks=node_ticks,
        elem_anchor=anchors.copy(),
        elem_size=sizes.copy(),
        elem_level=tree.levels.copy(),
        L=float(L),
        box_ticks=box_ticks,
    )


def uniform_hex_mesh(n: int, *, L: float = 1.0) -> HexMesh:
    """A uniform ``n x n x n`` hex mesh of the cube (testing/baselines)."""
    if n < 1 or (n & (n - 1)):
        raise ValueError("n must be a power of two")
    level = int(np.log2(n))
    from repro.octree.linear_octree import build_adaptive_octree

    tree = build_adaptive_octree(
        lambda c, s: np.full(len(c), 1.0 / n), max_level=level
    )
    return extract_mesh(tree, L=L)


def estimate_mesh_size(
    material,
    *,
    L: float,
    fmax: float,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
    points_per_wavelength: float = 10.0,
    h_min: float = 0.0,
    samples: int = 200_000,
    seed: int = 0,
) -> dict:
    """Predict mesh size and solve work without building the mesh.

    A wavelength-adaptive mesh has local element size
    ``h(x) = max(vs(x) / (N_lambda f_max), h_min)``, so the element
    count is the Monte-Carlo integral of ``h(x)^-3`` over the box, and
    the explicit solve's work scales as ``N * nsteps`` with
    ``nsteps ~ 1/dt ~ vp_max / h_min_model``.

    This quantifies the paper's scaling law — "each doubling of
    frequency leads to a factor of 8 increase in grid size and factor
    of 16 increase in work" — and reproduces its 2 Hz projection
    (~1.2 B grid points for the LA basin) from the model alone.

    Returns a dict with ``elements``, ``grid_points`` (~= elements for
    large octree meshes), ``time_steps_per_second`` and ``work`` (grid
    point-steps per simulated second).
    """
    rng = np.random.default_rng(seed)
    extent = np.array(box_frac, dtype=float) * L
    pts = rng.random((samples, 3)) * extent
    vs, vp, _ = material.query(pts)
    h = np.maximum(
        np.asarray(vs, dtype=float) / (points_per_wavelength * fmax), h_min
    )
    volume = float(np.prod(extent))
    elements = volume * float(np.mean(1.0 / h**3))
    # CFL: the stiffest-to-size ratio governs the step
    steps_per_s = float(np.max(np.asarray(vp, dtype=float) / h)) * np.sqrt(3.0) * 2.0
    return {
        "elements": elements,
        "grid_points": elements,  # hexahedral octree: ~1 node/element
        "time_steps_per_second": steps_per_s,
        "work": elements * steps_per_s,
    }


def wavelength_target(
    vs_query: Callable[[np.ndarray], np.ndarray],
    *,
    L: float,
    fmax: float,
    points_per_wavelength: float = 10.0,
    h_min: float = 0.0,
) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Refinement rule of the paper: ``h = vs / (N_lambda * f_max)``.

    Parameters
    ----------
    vs_query:
        Vectorized shear-wave velocity (m/s) at physical points
        ``(n, 3)`` meters.
    L:
        Physical root-cube edge (meters).
    fmax:
        Highest resolved frequency (Hz).
    points_per_wavelength:
        Grid points per shortest wavelength, ``N_lambda`` (paper uses 10).
    h_min:
        Optional floor on the element size (meters), e.g. to cap the
        mesh size in scaled-down runs.

    Returns
    -------
    callable suitable as ``target_size`` for
    :func:`repro.octree.build_adaptive_octree` (arguments in root-cube
    units).
    """

    def target(centers: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        vs = np.asarray(vs_query(centers * L), dtype=float)
        h = vs / (points_per_wavelength * fmax)
        return np.maximum(h, h_min) / L

    return target
