"""Element partitioning for the parallel solver.

The paper partitions elements with ParMETIS (Figure 2.3d).  We provide
two stand-ins with the same interface:

* :func:`rcb_partition` — recursive coordinate bisection on element
  centroids, the workhorse for octree meshes (geometric locality gives
  low surface-to-volume interfaces);
* :func:`graph_partition` — Kernighan–Lin recursive bisection on the
  element dual graph via networkx, for small meshes where graph quality
  matters.

:func:`partition_metrics` reports the quantities that drive parallel
efficiency: per-part element/grid-point counts, interface (shared) grid
points, and dual-graph edge cut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.hexmesh import HexMesh


def rcb_partition(
    centroids: np.ndarray,
    nparts: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Recursive coordinate bisection.

    Splits the element set along the longest coordinate extent into two
    halves with element counts proportional to the number of parts on
    each side (so any ``nparts`` is supported, not only powers of two).

    Unweighted splits use :func:`np.argpartition` selection — ``O(n)``
    per level instead of the ``O(n log n)`` of a full sort, so the whole
    recursion is ``O(n log P)`` rather than ``O(n log n log P)``.  With
    explicit ``weights`` the weighted cut point needs the cumulative
    weight profile, which requires the sorted order.

    Returns the part index (``0..nparts-1``) per element.
    """
    centroids = np.asarray(centroids, dtype=float)
    n = len(centroids)
    uniform = weights is None
    if uniform:
        weights = np.ones(n)
    parts = np.zeros(n, dtype=np.int64)
    if nparts < 1:
        raise ValueError("nparts must be >= 1")

    def split(idx: np.ndarray, base: int, p: int) -> None:
        if p == 1 or len(idx) == 0:
            parts[idx] = base
            return
        pts = centroids[idx]
        extent = pts.max(axis=0) - pts.min(axis=0)
        axis = int(np.argmax(extent))
        p_lo = p // 2
        if len(idx) == 1:
            lo, hi = idx[:0], idx
        elif uniform:
            # same cut index the cumsum/searchsorted form produces for
            # unit weights, found by selection instead of sorting
            cut = int(np.ceil(len(idx) * p_lo / p))
            cut = min(max(cut, 1), len(idx) - 1)
            sel = np.argpartition(pts[:, axis], cut - 1)
            lo, hi = idx[sel[:cut]], idx[sel[cut:]]
        else:
            w = weights[idx]
            order = np.argsort(pts[:, axis], kind="stable")
            cw = np.cumsum(w[order])
            target = cw[-1] * (p_lo / p)
            cut = int(np.searchsorted(cw, target)) + 1
            cut = min(max(cut, 1), len(idx) - 1)
            lo, hi = idx[order[:cut]], idx[order[cut:]]
        split(lo, base, p_lo)
        split(hi, base + p_lo, p - p_lo)

    split(np.arange(n), 0, nparts)
    return parts


def element_dual_graph(mesh: HexMesh, *, min_shared: int = 4):
    """Dual graph of the mesh: elements are vertices, edges join
    elements sharing at least ``min_shared`` nodes (4 = face adjacency
    on conforming interfaces; use 1 to include edge/corner adjacency).

    Returns a ``networkx.Graph`` with integer element ids.
    """
    import networkx as nx

    pairs: dict[tuple[int, int], int] = {}
    node_elems: dict[int, list[int]] = {}
    for e in range(mesh.nelem):
        for nidx in mesh.conn[e]:
            node_elems.setdefault(int(nidx), []).append(e)
    for elems in node_elems.values():
        for i in range(len(elems)):
            for j in range(i + 1, len(elems)):
                key = (elems[i], elems[j])
                pairs[key] = pairs.get(key, 0) + 1
    g = nx.Graph()
    g.add_nodes_from(range(mesh.nelem))
    g.add_edges_from(k for k, c in pairs.items() if c >= min_shared)
    return g


def graph_partition(mesh: HexMesh, nparts: int, *, seed: int = 0) -> np.ndarray:
    """Recursive Kernighan–Lin bisection of the element dual graph.

    A ParMETIS stand-in for small meshes; falls back to RCB-style index
    splitting to seed each bisection.  ``nparts`` must be a power of two.
    """
    import networkx as nx

    if nparts & (nparts - 1):
        raise ValueError("graph_partition requires a power-of-two nparts")
    g = element_dual_graph(mesh)
    parts = np.zeros(mesh.nelem, dtype=np.int64)
    groups = [np.arange(mesh.nelem)]
    stride = nparts
    while stride > 1:
        new_groups = []
        for base, idx in enumerate(groups):
            sub = g.subgraph(idx.tolist())
            a, b = nx.algorithms.community.kernighan_lin_bisection(
                sub, seed=seed + base
            )
            new_groups.append(np.fromiter(a, dtype=np.int64))
            new_groups.append(np.fromiter(b, dtype=np.int64))
        groups = new_groups
        stride //= 2
    for p, idx in enumerate(groups):
        parts[idx] = p
    return parts


@dataclass
class PartitionMetrics:
    """Quality metrics of an element partition."""

    nparts: int
    elems_per_part: np.ndarray
    nodes_per_part: np.ndarray
    shared_nodes_per_part: np.ndarray
    imbalance: float
    edge_cut: int
    total_shared_nodes: int


def partition_metrics(mesh: HexMesh, parts: np.ndarray) -> PartitionMetrics:
    """Compute load balance and interface sizes of a partition.

    A grid point is *shared* by a part when elements of more than one
    part touch it — these are the points whose values must be combined
    across ranks each time step.
    """
    parts = np.asarray(parts)
    nparts = int(parts.max()) + 1 if len(parts) else 0
    elems_per_part = np.bincount(parts, minlength=nparts)

    # node -> set of parts via (node, part) pair dedup
    pairs = np.stack(
        [mesh.conn.ravel(), np.repeat(parts, 8)], axis=1
    )
    pairs = np.unique(pairs, axis=0)
    nodes_per_part = np.bincount(pairs[:, 1], minlength=nparts)
    node_degree = np.bincount(pairs[:, 0], minlength=mesh.nnode)
    shared_mask = node_degree > 1
    shared_nodes = np.nonzero(shared_mask)[0]
    shared_pairs = pairs[np.isin(pairs[:, 0], shared_nodes)]
    shared_per_part = np.bincount(shared_pairs[:, 1], minlength=nparts)

    # dual-graph edge cut through face adjacency: count (elem, elem)
    # face pairs in different parts.  Face adjacency via node sharing
    # would be quadratic; instead use geometric face matching on the
    # octree lattice.
    edge_cut = _face_edge_cut(mesh, parts)
    avg = mesh.nelem / nparts
    imbalance = float(elems_per_part.max() / avg) if nparts else 1.0
    return PartitionMetrics(
        nparts=nparts,
        elems_per_part=elems_per_part,
        nodes_per_part=nodes_per_part,
        shared_nodes_per_part=shared_per_part,
        imbalance=imbalance,
        edge_cut=edge_cut,
        total_shared_nodes=int(shared_mask.sum()),
    )


def _face_edge_cut(mesh: HexMesh, parts: np.ndarray) -> int:
    """Count face-adjacent element pairs assigned to different parts."""
    from repro.octree.morton import morton_encode

    # sort elements by anchor code for probe lookup
    codes = morton_encode(
        mesh.elem_anchor[:, 0], mesh.elem_anchor[:, 1], mesh.elem_anchor[:, 2]
    )
    order = np.argsort(codes)
    sorted_codes = codes[order]

    cut = 0
    for axis in range(3):
        # probe the element on the +axis side by its anchor; covers
        # same-size and fine-to-coarse adjacency approximately (exact
        # for conforming faces, which dominate communication volume)
        probe = mesh.elem_anchor.copy()
        probe[:, axis] += mesh.elem_size
        inb = probe[:, axis] < mesh.box_ticks[axis]
        pc = morton_encode(probe[:, 0], probe[:, 1], probe[:, 2])
        k = np.searchsorted(sorted_codes, pc)
        k = np.clip(k, 0, len(sorted_codes) - 1)
        hit = inb & (sorted_codes[k] == pc)
        nbr = order[k]
        cut += int(np.sum(hit & (parts != parts[nbr])))
    return cut
