"""Mesh extraction and partitioning.

Turns balanced linear octrees into hexahedral finite element meshes
(the paper's "transform" step): global node numbering, detection of
*hanging* grid points on 2-to-1 refinement interfaces together with the
sparse constraint matrix ``B`` (paper eq. u = B ubar), boundary face
extraction for free-surface/absorbing boundaries, a tetrahedral baseline
mesh (the group's earlier code), and element partitioners (RCB and a
graph partitioner standing in for ParMETIS).
"""

from repro.mesh.hexmesh import (
    HexMesh,
    estimate_mesh_size,
    extract_mesh,
    uniform_hex_mesh,
    wavelength_target,
)
from repro.mesh.hanging import HangingNodeInfo, build_constraints
from repro.mesh.tetmesh import TetMesh, hex_to_tet_mesh
from repro.mesh.partition import (
    element_dual_graph,
    graph_partition,
    partition_metrics,
    rcb_partition,
)

__all__ = [
    "HexMesh",
    "estimate_mesh_size",
    "extract_mesh",
    "uniform_hex_mesh",
    "wavelength_target",
    "HangingNodeInfo",
    "build_constraints",
    "TetMesh",
    "hex_to_tet_mesh",
    "rcb_partition",
    "graph_partition",
    "element_dual_graph",
    "partition_metrics",
]
