"""Gauss-Newton-CG with Armijo backtracking (paper Section 3.1).

At every Newton iteration the Gauss-Newton system ``H dm = -g`` is
solved by preconditioned CG (each CG iteration = one forward + one
adjoint wave solve); an Armijo backtracking line search assures global
convergence, and a fraction-to-boundary rule keeps the iterates inside
the log-barrier domain.  Iteration counts are recorded — they are the
payload of Table 3.1.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.inverse.precond import LBFGSPreconditioner
from repro.resilience import NumericalHealthError
from repro.solver.checkpoint import CheckpointManager

from repro import telemetry


@dataclass
class GNResult:
    """Outcome and accounting of a Gauss-Newton-CG run."""

    m: np.ndarray
    objective: float
    newton_iterations: int
    total_cg_iterations: int
    converged: bool
    history: list = field(default_factory=list)

    @property
    def avg_cg_per_newton(self) -> float:
        return self.total_cg_iterations / max(self.newton_iterations, 1)


def _pcg(
    hessvec: Callable[[np.ndarray], np.ndarray],
    g: np.ndarray,
    *,
    tol: float,
    maxiter: int,
    precond: LBFGSPreconditioner | None,
) -> tuple[np.ndarray, int]:
    """Preconditioned CG on ``H d = -g``; truncates on negative
    curvature (returns the best descent direction found)."""
    n = len(g)
    d = np.zeros(n)
    r = -g.copy()
    z = precond.apply(r) if precond is not None else r.copy()
    p = z.copy()
    rz = float(r @ z)
    r0 = np.linalg.norm(r)
    iters = 0
    for _ in range(maxiter):
        with telemetry.span("gn.cg_iter"):
            Hp = hessvec(p)
        iters += 1
        telemetry.sample("gn.cg_residual", float(np.linalg.norm(r)))
        pHp = float(p @ Hp)
        # divergence safeguard: a NaN/Inf Hessian product (unstable
        # incremental solve) would silently poison every later iterate;
        # fall back to the best direction so far (or preconditioned
        # steepest descent) and let the line search save the step
        if not np.isfinite(pHp) or not np.all(np.isfinite(Hp)):
            telemetry.count("resilience.gn_divergence")
            if not d.any():
                d = z
            break
        if precond is not None:
            precond.stage_pair(p, Hp)
        # scale-invariant curvature guard: compare against |p||Hp|, not
        # |p|^2 (the Hessian's units are J / parameter^2 and can be many
        # orders of magnitude away from 1)
        if pHp <= 1e-14 * np.linalg.norm(p) * np.linalg.norm(Hp):
            if not d.any():
                d = z  # steepest (preconditioned) descent fallback
            break
        alpha = rz / pHp
        d = d + alpha * p
        r = r - alpha * Hp
        if np.linalg.norm(r) <= tol * r0:
            break
        z = precond.apply(r) if precond is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    if not d.any():
        d = -g
    return d, iters


def gauss_newton_cg(
    problem,
    m0: np.ndarray,
    *,
    max_newton: int = 30,
    gtol: float = 1e-6,
    cg_maxiter: int = 60,
    cg_forcing: float = 0.5,
    armijo_c: float = 1e-4,
    armijo_shrink: float = 0.5,
    armijo_max_backtracks: int = 20,
    precond: LBFGSPreconditioner | None = None,
    bounds_fraction: float = 0.995,
    callback: Callable | None = None,
    verbose: bool = False,
    checkpoint: CheckpointManager | None = None,
    resume: bool = False,
) -> GNResult:
    """Minimize ``problem.objective`` over the material parameters.

    ``problem`` must provide ``gradient(m) -> (g, J, state)``,
    ``gn_hessvec(v, state)``, ``objective(m)``, and the attributes
    ``barrier_gamma`` / ``mu_min`` (for the fraction-to-boundary rule).

    The CG tolerance follows an Eisenstat-Walker-style forcing term
    ``min(cg_forcing, sqrt(|g|/|g0|))`` for superlinear convergence.

    With ``checkpoint`` set, every accepted Newton iteration is durably
    snapshotted (the iterate, the committed L-BFGS curvature pairs, and
    the run accounting); ``resume=True`` restarts from the latest valid
    snapshot.  The resumed run recomputes the gradient at the restored
    iterate — ``problem.forward`` is deterministic, so the continuation
    is bit-identical to the uninterrupted run.
    """
    m = np.asarray(m0, dtype=float).copy()
    it0 = 0
    ck = checkpoint.latest() if (resume and checkpoint is not None) else None
    if ck is not None:
        m = ck.arrays["m"].copy()
        it0 = int(ck.meta["next_it"])
        total_cg = int(ck.meta["total_cg"])
        g0_norm = float(ck.meta["g0_norm"])
        history = list(ck.meta["history"])
        if precond is not None and "precond_s" in ck.arrays:
            precond.pairs = deque(
                (
                    (
                        ck.arrays["precond_s"][i],
                        ck.arrays["precond_y"][i],
                        float(ck.arrays["precond_sy"][i]),
                    )
                    for i in range(len(ck.arrays["precond_sy"]))
                ),
                maxlen=precond.memory,
            )
        with telemetry.span("gn.gradient"):
            g, J, state = problem.gradient(m)
    else:
        with telemetry.span("gn.gradient"):
            g, J, state = problem.gradient(m)
        g0_norm = np.linalg.norm(g)
        total_cg = 0
        history = [{"J": J, "gnorm": float(g0_norm)}]
        telemetry.sample("gn.J", J, step=0)
        telemetry.sample("gn.gnorm", float(g0_norm), step=0)
    converged = False

    for it in range(it0, max_newton):
        gnorm = np.linalg.norm(g)
        if gnorm <= gtol * max(g0_norm, 1e-30):
            converged = True
            break
        eta = min(cg_forcing, np.sqrt(gnorm / max(g0_norm, 1e-30)))
        with telemetry.span("gn.cg_solve") as _cg:
            d, cg_iters = _pcg(
                lambda v: problem.gn_hessvec(v, state),
                g,
                tol=eta,
                maxiter=cg_maxiter,
                precond=precond,
            )
            _cg.add("cg_iters", cg_iters)
        total_cg += cg_iters
        telemetry.sample("gn.cg_iters", cg_iters, step=it)
        if precond is not None:
            precond.commit()

        # fraction-to-boundary: stay strictly inside the barrier domain
        # (only for the components the problem's barrier actually covers)
        step = 1.0
        if getattr(problem, "barrier_gamma", 0.0) > 0:
            if hasattr(problem, "_barrier_mask"):
                mask = problem._barrier_mask(m)
            else:
                mask = np.ones(len(m), dtype=bool)
            gap = m[mask] - problem.mu_min
            dm = d[mask]
            neg = dm < 0
            if np.any(neg):
                limit = np.min(-bounds_fraction * gap[neg] / dm[neg])
                step = min(step, float(limit))

        gTd = float(g @ d)
        if gTd >= 0:  # not a descent direction; fall back
            d = -g
            gTd = -gnorm**2
        accepted = False
        with telemetry.span("gn.line_search"):
            for _ in range(armijo_max_backtracks):
                m_try = m + step * d
                try:
                    J_try, _, state_try = problem.objective(m_try)
                except NumericalHealthError:
                    # trial iterate sent the forward model unstable —
                    # treat like a non-finite objective and backtrack
                    J_try = np.inf
                if np.isfinite(J_try) and J_try <= J + armijo_c * step * gTd:
                    accepted = True
                    break
                step *= armijo_shrink
        if not accepted:
            break
        m = m_try
        with telemetry.span("gn.gradient"):
            g, J, state = problem.gradient(m, state_try)
        history.append(
            {"J": J, "gnorm": float(np.linalg.norm(g)), "cg": cg_iters,
             "step": float(step)}
        )
        if checkpoint is not None:
            # every accepted Newton iteration is a restart point (outer
            # iterations are expensive; the files are small)
            arrays = {"m": m}
            if precond is not None and len(precond.pairs):
                arrays["precond_s"] = np.stack(
                    [s for s, _, _ in precond.pairs]
                )
                arrays["precond_y"] = np.stack(
                    [y for _, y, _ in precond.pairs]
                )
                arrays["precond_sy"] = np.array(
                    [sy for _, _, sy in precond.pairs]
                )
            checkpoint.save(
                it,
                arrays,
                {
                    "next_it": it + 1,
                    "total_cg": total_cg,
                    "g0_norm": float(g0_norm),
                    "J": float(J),
                    "history": history,
                },
            )
        telemetry.sample("gn.J", J, step=it + 1)
        telemetry.sample("gn.gnorm", history[-1]["gnorm"], step=it + 1)
        if verbose:
            print(
                f"GN {it + 1:3d}: J={J:.6e} |g|={history[-1]['gnorm']:.3e} "
                f"cg={cg_iters} step={step:.3f}"
            )
        if callback is not None:
            callback(it, m, J)

    return GNResult(
        m=m,
        objective=J,
        newton_iterations=len(history) - 1,
        total_cg_iterations=total_cg,
        converged=converged,
        history=history,
    )
