"""The 2D antiplane fault source (paper eq. 3.1, Figure 3.1).

The seismic source is a dipole along the fault:
``f = -div( mu u0 g(t; t0, T) delta(Sigma) n )``.  We place the fault
on the vertical midline of one column of wave elements (so the shape
function gradients are single-valued on it); each fault element ``s``
(one per depth cell in the rupture range) carries its own dislocation
amplitude ``u0_s``, rise time ``t0_s``, and delay time ``T_s``.

The weak form over a fault segment of length ``h`` inside element ``e``
gives nodal forces ``b_i = mu_e u0 g(t) * h * dN_i/dx(center)`` — i.e.
``+- mu_e u0 g / 2`` on the two element sides.  The source therefore
depends on the *material* too, and the adjoint gradient keeps that
coupling (the ``u0 g delta(Sigma) grad lam . n`` term of the paper's
material equation 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solver.scalarwave import RegularGridScalarWave
from repro.sources.slip import dslip_dT, dslip_dt0, slip_function


@dataclass
class SourceParams:
    """Per-fault-element source fields (the unknowns of Fig 3.3)."""

    u0: np.ndarray
    t0: np.ndarray
    T: np.ndarray

    def copy(self) -> "SourceParams":
        return SourceParams(self.u0.copy(), self.t0.copy(), self.T.copy())

    def pack(self) -> np.ndarray:
        return np.concatenate([self.u0, self.t0, self.T])

    @staticmethod
    def unpack(x: np.ndarray) -> "SourceParams":
        n = len(x) // 3
        return SourceParams(x[:n].copy(), x[n : 2 * n].copy(), x[2 * n :].copy())


class FaultLineSource2D:
    """Vertical fault through a 2D antiplane wave grid.

    Parameters
    ----------
    solver:
        The 2D :class:`RegularGridScalarWave`.
    ix:
        x-index of the element column holding the fault midline.
    jz:
        Depth element indices covered by the rupture (e.g.
        ``range(8, 16)``).
    """

    def __init__(self, solver: RegularGridScalarWave, ix: int, jz):
        if solver.d != 2:
            raise ValueError("FaultLineSource2D is for 2D grids")
        self.solver = solver
        self.ix = int(ix)
        self.jz = np.asarray(list(jz), dtype=np.int64)
        self.ns = len(self.jz)
        # element ids of the fault segments
        self.elems = np.ravel_multi_index(
            (np.full(self.ns, self.ix), self.jz), solver.shape
        )
        # nodal weight pattern: h * dN/dx at the element center is
        # -1/(2h) on the x-min corners and +1/(2h) on the x-max corners,
        # times segment length h -> +-1/2
        conn = solver.conn[self.elems]  # (ns, 4)
        self.nodes = conn
        w = np.empty(4)
        for k in range(4):
            w[k] = +0.5 if (k & 1) else -0.5
        self.w = w  # local corner order: bit0 = x

    @property
    def depths(self) -> np.ndarray:
        """Physical depth of each fault-segment center."""
        return (self.jz + 0.5) * self.solver.h

    def hypocentral_params(
        self, hypo_j: int, rupture_velocity: float, u0: float, t0: float
    ) -> SourceParams:
        """Constant-slip scenario: ``T_s`` from rupture distance."""
        dist = np.abs(self.jz - hypo_j) * self.solver.h
        return SourceParams(
            u0=np.full(self.ns, float(u0)),
            t0=np.full(self.ns, float(t0)),
            T=dist / float(rupture_velocity),
        )

    # ----------------------------------------------------------- forcing

    def _amps(self, mu_e: np.ndarray, p: SourceParams, t: float) -> np.ndarray:
        g = slip_function(t, p.T, p.t0)
        return mu_e[self.elems] * p.u0 * g

    def forcing(self, mu_e: np.ndarray, p: SourceParams, dt: float):
        """``forcing(k)`` callable for :meth:`RegularGridScalarWave.march`
        (includes the ``dt^2`` factor)."""

        def f(k: int) -> np.ndarray:
            amp = self._amps(mu_e, p, k * dt)
            out = np.zeros(self.solver.nnode)
            np.add.at(
                out,
                self.nodes.ravel(),
                (amp[:, None] * self.w[None, :]).ravel() * dt**2,
            )
            return out

        return f

    # --------------------------------------------------------- adjoints

    def lam_projection(self, lam_k: np.ndarray) -> np.ndarray:
        """``sum_i w_i lam[node_i]`` per fault segment — the contraction
        every parameter derivative needs."""
        return np.sum(lam_k[self.nodes] * self.w[None, :], axis=1)

    def material_gradient_term(
        self, proj: np.ndarray, p: SourceParams, t: float
    ) -> np.ndarray:
        """Per-element ``lam^T db/dmu_e`` at time ``t`` (fault elements
        only); ``proj`` is :meth:`lam_projection` of ``lam^{k+1}``."""
        g = slip_function(t, p.T, p.t0)
        out = np.zeros(self.solver.nelem)
        np.add.at(out, self.elems, proj * p.u0 * g)
        return out

    def material_gradient_batch(
        self, lam_batch: np.ndarray, p: SourceParams, times: np.ndarray
    ) -> np.ndarray:
        """Time-batched ``sum_t lam^T db/dmu_e``: ``lam_batch`` is
        ``(nt, nnode)``, ``times`` the matching source times."""
        proj = np.einsum(
            "tsf,f->ts", lam_batch[:, self.nodes], self.w
        )  # (nt, ns)
        g = slip_function(times[:, None], p.T[None, :], p.t0[None, :])
        amp = np.sum(proj * p.u0[None, :] * g, axis=0)
        out = np.zeros(self.solver.nelem)
        np.add.at(out, self.elems, amp)
        return out

    def source_gradient_terms(
        self, proj: np.ndarray, mu_e: np.ndarray, p: SourceParams, t: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``lam^T db/d(u0, t0, T)`` per fault segment at time ``t``."""
        mu_s = mu_e[self.elems]
        g = slip_function(t, p.T, p.t0)
        dgdt0 = dslip_dt0(t, p.T, p.t0)
        dgdT = dslip_dT(t, p.T, p.t0)
        return (
            proj * mu_s * g,
            proj * mu_s * p.u0 * dgdt0,
            proj * mu_s * p.u0 * dgdT,
        )

    def forcing_from_mu_perturbation(
        self, dmu_e: np.ndarray, p: SourceParams, dt: float
    ):
        """``dt^2 (db/dmu) dmu`` forcing for the incremental forward."""

        def f(k: int) -> np.ndarray:
            g = slip_function(k * dt, p.T, p.t0)
            amp = dmu_e[self.elems] * p.u0 * g
            out = np.zeros(self.solver.nnode)
            np.add.at(
                out,
                self.nodes.ravel(),
                (amp[:, None] * self.w[None, :]).ravel() * dt**2,
            )
            return out

        return f

    def forcing_from_param_perturbation(
        self, mu_e: np.ndarray, p: SourceParams, dp: SourceParams, dt: float
    ):
        """``dt^2 (db/dp) dp`` forcing for the incremental forward."""
        mu_s = mu_e[self.elems]

        def f(k: int) -> np.ndarray:
            t = k * dt
            g = slip_function(t, p.T, p.t0)
            amp = (
                mu_s * dp.u0 * g
                + mu_s * p.u0 * dslip_dt0(t, p.T, p.t0) * dp.t0
                + mu_s * p.u0 * dslip_dT(t, p.T, p.t0) * dp.T
            )
            out = np.zeros(self.solver.nnode)
            np.add.at(
                out,
                self.nodes.ravel(),
                (amp[:, None] * self.w[None, :]).ravel() * dt**2,
            )
            return out

        return f
