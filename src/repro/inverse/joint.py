"""Joint source + material inversion ("blind deconvolution").

The paper closes Section 3.2 noting that when both the source and the
material are unknown the problem "is even more challenging".  We
implement the natural block-coordinate (alternating) scheme the
formulation suggests: repeatedly solve the material subproblem with the
current source estimate frozen, then the source subproblem with the
current material frozen, each by the same Gauss-Newton-CG machinery.
The data misfit is monotonically non-increasing across half-steps
because each subproblem starts from the current iterate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.inverse.fault_source import FaultLineSource2D, SourceParams
from repro.inverse.gauss_newton import gauss_newton_cg
from repro.inverse.parametrization import MaterialGrid
from repro.inverse.problem import ScalarWaveInverseProblem
from repro.inverse.source_inversion import SourceInverseProblem
from repro.solver.scalarwave import RegularGridScalarWave


@dataclass
class JointResult:
    m: np.ndarray
    p: SourceParams
    history: list = field(default_factory=list)

    @property
    def final_misfit(self) -> float:
        return self.history[-1]["J_data"] if self.history else np.inf


def joint_invert(
    solver: RegularGridScalarWave,
    grid: MaterialGrid,
    fault: FaultLineSource2D,
    receivers: np.ndarray,
    data: np.ndarray,
    dt: float,
    nsteps: int,
    m0: np.ndarray,
    p0: SourceParams,
    *,
    outer_iterations: int = 4,
    newton_per_block: int = 5,
    cg_maxiter: int = 25,
    beta_tv: float = 0.0,
    beta_source: float = 1e-6,
    barrier_gamma: float = 1e-8,
    verbose: bool = False,
) -> JointResult:
    """Alternating material/source inversion from records alone.

    Each outer iteration runs ``newton_per_block`` Gauss-Newton steps on
    the material with the source frozen, then on the source with the
    material frozen.  Returns the final estimates and the per-half-step
    data-misfit history.
    """
    from repro.inverse.regularization import TotalVariation

    m = np.asarray(m0, dtype=float).copy()
    p = p0.copy()
    history = []
    reg = TotalVariation(grid, beta_tv) if beta_tv > 0 else None
    mu_min = 0.05 * float(np.min(m))  # keep the modulus positive
    for outer in range(outer_iterations):
        mat_prob = ScalarWaveInverseProblem(
            solver, grid, receivers, data, dt, nsteps,
            fault=fault, source_params=p, reg=reg,
            barrier_gamma=barrier_gamma, mu_min=mu_min,
        )
        res_m = gauss_newton_cg(
            mat_prob, m, max_newton=newton_per_block, cg_maxiter=cg_maxiter
        )
        m = res_m.m
        state = mat_prob.forward(m)
        history.append(
            {"outer": outer, "block": "material",
             "J_data": mat_prob.data_misfit(state)}
        )
        if verbose:
            print(f"outer {outer} material: J_data {history[-1]['J_data']:.4e}")

        mu_e = grid.to_elements(solver) @ m
        src_prob = SourceInverseProblem(
            solver, fault, mu_e, receivers, data, dt, nsteps,
            beta_u0=beta_source, beta_t0=beta_source, beta_T=beta_source,
        )
        res_p = gauss_newton_cg(
            src_prob, p.pack(), max_newton=newton_per_block,
            cg_maxiter=cg_maxiter,
        )
        p = SourceParams.unpack(res_p.m)
        s_state = src_prob.forward(p.pack())
        history.append(
            {"outer": outer, "block": "source",
             "J_data": 0.5 * dt * float(np.sum(s_state.residual**2))}
        )
        if verbose:
            print(f"outer {outer} source  : J_data {history[-1]['J_data']:.4e}")
    return JointResult(m=m, p=p, history=history)
