"""3D elastic material inversion (the paper's stated next step).

The paper presents 2D antiplane inversions and announces that "results
from 3D inversion will be presented at SC2003".  This module supplies
that capability for the hexahedral elastic solver: invert the Lamé
fields ``(lambda(x), mu(x))`` — parameterized on a coarse 3D material
grid — from three-component records, by the same
discretize-then-optimize machinery as the scalar problem:

* forward: the explicit central-difference update with lumped mass and
  Lysmer absorbing damping (conforming meshes; the Stacey ``c1``
  coupling and hanging projection are solver features not needed for
  the exactness result here);
* adjoint: the same dissipative leapfrog backward in time;
* material equations: per-element accumulations against the two
  reference stiffness matrices (``K_e = h (lambda K_l + mu K_m)``) and
  the material-dependent boundary impedances
  (``d1 = sqrt(rho (lambda + 2 mu))``, ``d2 = sqrt(rho mu)``).

Gradients are exact at the discrete level (FD-verified in the tests);
Gauss-Newton Hessian-vector products cost one incremental forward plus
one adjoint solve, so :func:`repro.inverse.gauss_newton_cg` drives this
problem unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.backend import get_backend
from repro.fem.assembly import lumped_mass
from repro.fem.hex_element import hex_elastic_reference
from repro.inverse.parametrization import MaterialGrid
from repro.mesh.hexmesh import HexMesh
from repro.solver.wave_solver import DEFAULT_ABSORBING


class _ElasticKernel:
    """Reusable gather/scatter machinery for coefficient-parameterized
    stiffness actions and their material derivatives."""

    def __init__(self, mesh: HexMesh):
        self.mesh = mesh
        self.conn = mesh.conn
        self.h = mesh.elem_h
        self.nnode = mesh.nnode
        self.nelem = mesh.nelem
        K_l, K_m = hex_elastic_reference()
        self.K_l, self.K_m = K_l, K_m
        dof = (self.conn[:, :, None] * 3 + np.arange(3)[None, None, :]).reshape(
            self.nelem, 24
        )
        self._dof_flat = dof.ravel()
        self._dof = dof
        # coefficient-per-call kernel: the inversion evaluates many
        # material iterates through the same gather/scatter plan
        self._kernel = get_backend().element_kernel(
            self.conn, (K_l, K_m), self.nnode, ncomp=3
        )
        self._c_lam = np.empty(self.nelem)
        self._c_mu = np.empty(self.nelem)

    def apply_K(
        self, lam_e, mu_e, u: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            out = np.empty((self.nnode, 3))
        elif not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        np.multiply(np.asarray(lam_e, float), self.h, out=self._c_lam)
        np.multiply(np.asarray(mu_e, float), self.h, out=self._c_mu)
        self._kernel.matvec(
            np.ascontiguousarray(u).reshape(-1),
            out.reshape(-1),
            coefs=(self._c_lam, self._c_mu),
        )
        return out

    def K_material_gradient_batch(
        self, u: np.ndarray, lam_adj: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(sum_t adj^T dK/dlambda_e u, sum_t adj^T dK/dmu_e u)`` for
        time-batched fields of shape ``(nt, nnode, 3)``."""
        U = u[:, self.conn].reshape(u.shape[0], self.nelem, 24)
        A = lam_adj[:, self.conn].reshape(u.shape[0], self.nelem, 24)
        g_l = self.h * np.einsum("tei,ij,tej->e", A, self.K_l, U)
        g_m = self.h * np.einsum("tei,ij,tej->e", A, self.K_m, U)
        return g_l, g_m


class _LysmerBoundary:
    """Material-differentiable absorbing damping (d1/d2 terms only)."""

    def __init__(self, mesh: HexMesh, absorbing: Sequence[tuple[int, int]]):
        self.faces = []
        for axis, side in absorbing:
            idx, fnodes = mesh.boundary_faces(axis, side)
            self.faces.append((axis, idx, fnodes, mesh.elem_h[idx] ** 2 / 4.0))
        self.nnode = mesh.nnode

    def damping_diag(self, lam_e, mu_e, rho_e) -> np.ndarray:
        C = np.zeros((self.nnode, 3))
        for axis, idx, fnodes, area4 in self.faces:
            d1 = np.sqrt(rho_e[idx] * (lam_e[idx] + 2.0 * mu_e[idx]))
            d2 = np.sqrt(rho_e[idx] * mu_e[idx])
            for comp in range(3):
                d = d1 if comp == axis else d2
                np.add.at(
                    C[:, comp], fnodes.ravel(), np.repeat(d * area4, 4)
                )
        return C

    def damping_perturbation(
        self, lam_e, mu_e, rho_e, dlam_e, dmu_e
    ) -> np.ndarray:
        """``(dC/dlambda) dlam + (dC/dmu) dmu`` as a nodal diagonal."""
        out = np.zeros((self.nnode, 3))
        for axis, idx, fnodes, area4 in self.faces:
            d1 = np.sqrt(rho_e[idx] * (lam_e[idx] + 2.0 * mu_e[idx]))
            d2 = np.sqrt(rho_e[idx] * mu_e[idx])
            dd1 = rho_e[idx] * (dlam_e[idx] + 2.0 * dmu_e[idx]) / (2.0 * d1)
            dd2 = rho_e[idx] * dmu_e[idx] / (2.0 * d2)
            for comp in range(3):
                dd = dd1 if comp == axis else dd2
                np.add.at(
                    out[:, comp], fnodes.ravel(), np.repeat(dd * area4, 4)
                )
        return out

    def material_gradient_batch(
        self, w: np.ndarray, adj: np.ndarray, lam_e, mu_e, rho_e
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(sum_t adj^T dC/dlambda_e w, sum_t adj^T dC/dmu_e w)`` for
        time-batched nodal fields ``(nt, nnode, 3)``."""
        nelem = len(lam_e)
        g_l = np.zeros(nelem)
        g_m = np.zeros(nelem)
        for axis, idx, fnodes, area4 in self.faces:
            d1 = np.sqrt(rho_e[idx] * (lam_e[idx] + 2.0 * mu_e[idx]))
            d2 = np.sqrt(rho_e[idx] * mu_e[idx])
            # contraction of adj*w over the face nodes, per component
            for comp in range(3):
                contrib = np.einsum(
                    "tsf,tsf->s",
                    adj[:, fnodes, comp],
                    w[:, fnodes, comp],
                ) * area4
                if comp == axis:
                    np.add.at(g_l, idx, contrib * rho_e[idx] / (2.0 * d1))
                    np.add.at(g_m, idx, contrib * rho_e[idx] / d1)
                else:
                    np.add.at(g_m, idx, contrib * rho_e[idx] / (2.0 * d2))
        return g_l, g_m


@dataclass
class ElasticForwardState:
    m: np.ndarray
    lam_e: np.ndarray
    mu_e: np.ndarray
    u: np.ndarray  # (nsteps+1, nnode, 3)
    residual: np.ndarray  # (nsteps+1, nrec, 3)


class ElasticInverseProblem:
    """Invert ``(lambda, mu)`` of a 3D elastic model from 3-component
    records.

    The parameter vector is ``m = [lambda_nodes; mu_nodes]`` on a 3D
    :class:`MaterialGrid` (pass a grid whose cells match the wave
    elements for per-element inversion).  Density is known and fixed.

    Parameters
    ----------
    mesh:
        Conforming hexahedral mesh (uniform refinement level).
    rho:
        Known density per element.
    receivers:
        Node indices; ``data`` has shape ``(nsteps+1, nrec, 3)``.
    forces:
        Nodal force callable ``forces(t) -> (nnode, 3)`` (material-
        independent sources, e.g. point forces / moment stencils).
    """

    def __init__(
        self,
        mesh: HexMesh,
        grid: MaterialGrid,
        rho: np.ndarray,
        receivers: np.ndarray,
        data: np.ndarray,
        dt: float,
        nsteps: int,
        forces: Callable[[float], np.ndarray],
        *,
        absorbing: Sequence[tuple[int, int]] = DEFAULT_ABSORBING,
        reg_lambda: float = 0.0,
        barrier_gamma: float = 0.0,
        mu_min: float = 0.0,
    ):
        if len(np.unique(mesh.elem_level)) > 1:
            raise ValueError("elastic inversion requires a conforming mesh")
        self.mesh = mesh
        self.grid = grid
        self.kernel = _ElasticKernel(mesh)
        self.boundary = _LysmerBoundary(mesh, absorbing)
        self.rho_e = np.asarray(rho, dtype=float)
        self.mass = lumped_mass(
            mesh.conn, mesh.elem_h, self.rho_e, mesh.nnode
        )[:, None]
        self.receivers = np.asarray(receivers, dtype=np.int64)
        self.data = np.asarray(data, dtype=float)
        if self.data.shape != (nsteps + 1, len(self.receivers), 3):
            raise ValueError("data must be (nsteps+1, nrec, 3)")
        self.dt = float(dt)
        self.nsteps = int(nsteps)
        self.forces = forces
        if grid.d != 3:
            raise ValueError("elastic inversion needs a 3D material grid")
        self.P = grid.interpolation_matrix(mesh.elem_centers)
        self.nhalf = grid.n
        self.reg_lambda = float(reg_lambda)
        self.barrier_gamma = float(barrier_gamma)
        self.mu_min = float(mu_min)
        self.n_wave_solves = 0
        # simple Tikhonov-on-gradient regularizer built from the grid
        if self.reg_lambda > 0:
            from repro.inverse.regularization import TotalVariation

            # quadratic smoothing: TV with a huge eps degenerates to H1
            self._reg = TotalVariation(grid, self.reg_lambda, eps=1e6)
        else:
            self._reg = None

    # ----------------------------------------------------------- plumbing

    def split(self, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return m[: self.nhalf], m[self.nhalf :]

    def fields(self, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lam_n, mu_n = self.split(np.asarray(m, dtype=float))
        return self.P @ lam_n, self.P @ mu_n

    # ------------------------------------------------------------ forward

    def _march(self, lam_e, mu_e, forcing, *, store=True):
        """Vector leapfrog, same convention as the scalar substrate.

        Fused in-place update with buffer rotation: the steady-state
        loop performs no per-step O(nnode) heap allocations."""
        dt = self.dt
        dt2 = dt * dt
        N = self.nsteps
        C = self.boundary.damping_diag(lam_e, mu_e, self.rho_e)
        inv_a_plus = 1.0 / (self.mass + 0.5 * dt * C)
        a_minus = self.mass - 0.5 * dt * C
        m2 = 2.0 * self.mass
        nnode = self.mesh.nnode
        x_prev = np.zeros((nnode, 3))
        x = np.zeros((nnode, 3))
        x_next = np.zeros((nnode, 3))
        r = np.empty((nnode, 3))
        Kx = np.empty((nnode, 3))
        hist = np.zeros((N + 1, nnode, 3)) if store else None
        for k in range(1, N):
            f = forcing(k)
            self.kernel.apply_K(lam_e, mu_e, x, out=Kx)
            np.multiply(m2, x, out=r)
            np.multiply(Kx, dt2, out=Kx)
            np.subtract(r, Kx, out=r)
            np.multiply(a_minus, x_prev, out=Kx)
            np.subtract(r, Kx, out=r)
            if f is not None:
                np.add(r, f, out=r)
            np.multiply(r, inv_a_plus, out=x_next)
            if store:
                hist[k + 1] = x_next
            x_prev, x, x_next = x, x_next, x_prev
        self.n_wave_solves += 1
        return hist if store else np.stack([x_prev, x])

    def forward(self, m: np.ndarray) -> ElasticForwardState:
        lam_e, mu_e = self.fields(m)
        if np.any(mu_e <= 0) or np.any(lam_e <= 0):
            raise FloatingPointError("non-positive Lamé field")
        dt = self.dt

        def forcing(k):
            b = self.forces(k * dt)
            return dt**2 * b if b is not None else None

        u = self._march(lam_e, mu_e, forcing, store=True)
        residual = u[:, self.receivers, :] - self.data
        return ElasticForwardState(
            m=np.asarray(m, float).copy(),
            lam_e=lam_e,
            mu_e=mu_e,
            u=u,
            residual=residual,
        )

    def objective(self, m: np.ndarray, state: ElasticForwardState | None = None):
        if state is None:
            state = self.forward(m)
        parts = {"data": 0.5 * self.dt * float(np.sum(state.residual**2))}
        if self._reg is not None:
            lam_n, mu_n = self.split(m)
            parts["reg"] = self._reg.value(lam_n) + self._reg.value(mu_n)
        if self.barrier_gamma > 0:
            gap = m - self.mu_min
            if np.any(gap <= 0):
                return np.inf, parts, state
            parts["barrier"] = -self.barrier_gamma * float(
                np.sum(np.log(gap))
            )
        return sum(parts.values()), parts, state

    # ------------------------------------------------------------ adjoint

    def _adjoint(self, lam_e, mu_e, rhs_series: np.ndarray) -> np.ndarray:
        N = self.nsteps
        dt = self.dt

        def forcing(mrev):
            j = N + 1 - mrev
            f = np.zeros((self.mesh.nnode, 3))
            f[self.receivers] = -dt * rhs_series[j]
            return f

        x = self._march(lam_e, mu_e, forcing, store=True)
        lam = np.zeros((N + 1, self.mesh.nnode, 3))
        lam[2 : N + 1] = x[2 : N + 1][::-1]
        return lam

    def _accumulate(self, state, adj) -> np.ndarray:
        """Per-element ``(g_lambda, g_mu)`` stacked as one vector on the
        material grid via ``P^T``."""
        dt = self.dt
        N = self.nsteps
        g_l = np.zeros(self.mesh.nelem)
        g_m = np.zeros(self.mesh.nelem)
        chunk = 32
        for k0 in range(1, N, chunk):
            ks = np.arange(k0, min(k0 + chunk, N))
            A = adj[ks + 1]
            gl, gm = self.kernel.K_material_gradient_batch(state.u[ks], A)
            g_l += dt**2 * gl
            g_m += dt**2 * gm
            w = state.u[ks + 1] - state.u[ks - 1]
            bl, bm = self.boundary.material_gradient_batch(
                w, A, state.lam_e, state.mu_e, self.rho_e
            )
            g_l += 0.5 * dt * bl
            g_m += 0.5 * dt * bm
        return np.concatenate([self.P.T @ g_l, self.P.T @ g_m])

    def gradient(self, m: np.ndarray, state: ElasticForwardState | None = None):
        if state is None:
            state = self.forward(m)
        J, _, _ = self.objective(m, state)
        adj = self._adjoint(state.lam_e, state.mu_e, state.residual)
        g = self._accumulate(state, adj)
        if self._reg is not None:
            lam_n, mu_n = self.split(m)
            g[: self.nhalf] += self._reg.gradient(lam_n)
            g[self.nhalf :] += self._reg.gradient(mu_n)
        if self.barrier_gamma > 0:
            g -= self.barrier_gamma / (m - self.mu_min)
        return g, J, state

    # ------------------------------------------------- Gauss-Newton HVP

    def gn_hessvec(self, v: np.ndarray, state: ElasticForwardState) -> np.ndarray:
        dt = self.dt
        dl_n, dm_n = self.split(np.asarray(v, dtype=float))
        dlam_e, dmu_e = self.P @ dl_n, self.P @ dm_n
        C_delta = self.boundary.damping_perturbation(
            state.lam_e, state.mu_e, self.rho_e, dlam_e, dmu_e
        )
        u = state.u

        def forcing(k):
            f = -0.5 * dt * C_delta * (u[k + 1] - u[k - 1])
            f -= dt**2 * self.kernel.apply_K(dlam_e, dmu_e, u[k])
            return f

        du = self._march(state.lam_e, state.mu_e, forcing, store=True)
        adj = self._adjoint(
            state.lam_e, state.mu_e, du[:, self.receivers, :]
        )
        Hv = self._accumulate(state, adj)
        if self._reg is not None:
            lam_n, mu_n = self.split(state.m)
            Hv[: self.nhalf] += self._reg.hessvec(lam_n, dl_n)
            Hv[self.nhalf :] += self._reg.hessvec(mu_n, dm_n)
        if self.barrier_gamma > 0:
            Hv += self.barrier_gamma * v / (state.m - self.mu_min) ** 2
        return Hv
