"""Source inversion (paper Section 3.2, Figure 3.3).

With the material fixed, invert the fault source fields — dislocation
amplitude ``u0(x)``, rise time ``t0(x)``, delay time ``T(x)`` — from
receiver records.  The parameter derivatives of the slip function are
analytic (:mod:`repro.sources.slip`), the adjoint is the same backward
leapfrog, and Tikhonov regularization penalizes oscillations of each
field along the fault (paper eq. 3.5-3.7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inverse.fault_source import FaultLineSource2D, SourceParams
from repro.inverse.regularization import Tikhonov1D
from repro.solver.scalarwave import RegularGridScalarWave


@dataclass
class SourceForwardState:
    p: SourceParams
    u: np.ndarray
    residual: np.ndarray

    @property
    def m(self):  # the generic GN driver stores/passes this through
        return None


class SourceInverseProblem:
    """Invert ``(u0, t0, T)`` on the fault; parameters are packed as a
    single vector ``[u0; t0; T]`` for the Gauss-Newton driver.

    Physical bounds: ``t0 > 0`` is required for a well-defined slip
    function; the ``barrier_gamma`` log-barrier keeps ``t0`` and ``u0``
    positive (``T`` may be any non-negative delay).
    """

    def __init__(
        self,
        solver: RegularGridScalarWave,
        fault: FaultLineSource2D,
        mu_e: np.ndarray,
        receivers: np.ndarray,
        data: np.ndarray,
        dt: float,
        nsteps: int,
        *,
        beta_u0: float = 0.0,
        beta_t0: float = 0.0,
        beta_T: float = 0.0,
        barrier_gamma: float = 0.0,
        p_min: float = 1e-3,
    ):
        self.solver = solver
        self.fault = fault
        self.mu_e = np.asarray(mu_e, dtype=float)
        self.receivers = np.asarray(receivers, dtype=np.int64)
        self.data = np.asarray(data, dtype=float)
        self.dt = float(dt)
        self.nsteps = int(nsteps)
        ns = fault.ns
        h = solver.h
        self.reg_u0 = Tikhonov1D(ns, h, beta_u0)
        self.reg_t0 = Tikhonov1D(ns, h, beta_t0)
        self.reg_T = Tikhonov1D(ns, h, beta_T)
        self.barrier_gamma = float(barrier_gamma)
        self.mu_min = float(p_min)  # generic name used by the GN driver
        self.n_wave_solves = 0
        self.ns = ns

    # barrier applies to u0 and t0 only; T is unconstrained from above
    def _barrier_mask(self, x: np.ndarray) -> np.ndarray:
        mask = np.zeros(len(x), dtype=bool)
        mask[: 2 * self.ns] = True
        return mask

    # ------------------------------------------------------------ forward

    def forward(self, x: np.ndarray) -> SourceForwardState:
        p = SourceParams.unpack(x)
        u = self.solver.march(
            self.mu_e,
            self.fault.forcing(self.mu_e, p, self.dt),
            self.nsteps,
            self.dt,
            store=True,
        )
        self.n_wave_solves += 1
        return SourceForwardState(
            p=p, u=u, residual=u[:, self.receivers] - self.data
        )

    def objective(self, x: np.ndarray, state: SourceForwardState | None = None):
        if state is None:
            state = self.forward(x)
        p = state.p
        parts = {
            "data": 0.5 * self.dt * float(np.sum(state.residual**2)),
            "reg": (
                self.reg_u0.value(p.u0)
                + self.reg_t0.value(p.t0)
                + self.reg_T.value(p.T)
            ),
        }
        if self.barrier_gamma > 0:
            mask = self._barrier_mask(x)
            gap = x[mask] - self.mu_min
            if np.any(gap <= 0):
                return np.inf, parts, state
            parts["barrier"] = -self.barrier_gamma * float(np.sum(np.log(gap)))
        return sum(parts.values()), parts, state

    # ------------------------------------------------------------ adjoint

    def _adjoint_states(self, rhs_series: np.ndarray) -> np.ndarray:
        N = self.nsteps

        def forcing(mrev: int):
            j = N + 1 - mrev
            f = np.zeros(self.solver.nnode)
            f[self.receivers] = -self.dt * rhs_series[j]
            return f

        x = self.solver.march(self.mu_e, forcing, N, self.dt, store=True)
        self.n_wave_solves += 1
        lam = np.zeros((N + 1, self.solver.nnode))
        lam[2 : N + 1] = x[2 : N + 1][::-1]
        return lam

    def _param_accumulation(
        self, lam: np.ndarray, p: SourceParams
    ) -> np.ndarray:
        """``-dt^2 sum_k lam^{k+1,T} db^k/dp`` packed as ``[u0; t0; T]``
        (time-batched)."""
        from repro.sources.slip import dslip_dT, dslip_dt0, slip_function

        dt = self.dt
        N = self.nsteps
        mu_s = self.mu_e[self.fault.elems]
        g_u0 = np.zeros(self.ns)
        g_t0 = np.zeros(self.ns)
        g_T = np.zeros(self.ns)
        chunk = 128
        for k0 in range(1, N, chunk):
            ks = np.arange(k0, min(k0 + chunk, N))
            proj = np.einsum(
                "tsf,f->ts", lam[ks + 1][:, self.fault.nodes], self.fault.w
            )
            t = (ks * dt)[:, None]
            T, t0, u0 = p.T[None, :], p.t0[None, :], p.u0[None, :]
            base = proj * mu_s[None, :]
            g_u0 -= dt**2 * np.sum(base * slip_function(t, T, t0), axis=0)
            g_t0 -= dt**2 * np.sum(base * u0 * dslip_dt0(t, T, t0), axis=0)
            g_T -= dt**2 * np.sum(base * u0 * dslip_dT(t, T, t0), axis=0)
        return np.concatenate([g_u0, g_t0, g_T])

    def gradient(self, x: np.ndarray, state: SourceForwardState | None = None):
        if state is None:
            state = self.forward(x)
        J, _, _ = self.objective(x, state)
        lam = self._adjoint_states(state.residual)
        g = self._param_accumulation(lam, state.p)
        p = state.p
        g[: self.ns] += self.reg_u0.gradient(p.u0)
        g[self.ns : 2 * self.ns] += self.reg_t0.gradient(p.t0)
        g[2 * self.ns :] += self.reg_T.gradient(p.T)
        if self.barrier_gamma > 0:
            mask = self._barrier_mask(x)
            g[mask] -= self.barrier_gamma / (x[mask] - self.mu_min)
        state_x = x  # the GN driver re-derives state from objective()
        return g, J, state

    # ------------------------------------------------- Gauss-Newton HVP

    def gn_hessvec(self, v: np.ndarray, state: SourceForwardState) -> np.ndarray:
        dp = SourceParams.unpack(v)
        du = self.solver.march(
            self.mu_e,
            self.fault.forcing_from_param_perturbation(
                self.mu_e, state.p, dp, self.dt
            ),
            self.nsteps,
            self.dt,
            store=True,
        )
        self.n_wave_solves += 1
        lam_t = self._adjoint_states(du[:, self.receivers])
        Hv = self._param_accumulation(lam_t, state.p)
        Hv[: self.ns] += self.reg_u0.hessvec(dp.u0)
        Hv[self.ns : 2 * self.ns] += self.reg_t0.hessvec(dp.t0)
        Hv[2 * self.ns :] += self.reg_T.hessvec(dp.T)
        if self.barrier_gamma > 0:
            x = np.concatenate([state.p.u0, state.p.t0, state.p.T])
            mask = self._barrier_mask(x)
            Hv[mask] += (
                self.barrier_gamma * v[mask] / (x[mask] - self.mu_min) ** 2
            )
        return Hv
