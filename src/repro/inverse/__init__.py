"""Inverse earthquake modeling (paper Section 3).

Discrete-adjoint nonlinear least squares for the scalar (antiplane /
3D scalar) wave equation: invert the shear modulus field and/or the
fault source parameters (dislocation amplitude ``u0``, rise time
``t0``, delay time ``T``) from receiver records, with total-variation
regularization on the material and Tikhonov regularization on the
source fields.

Everything is discretize-then-optimize: gradients are the *exact*
adjoints of the leapfrog recurrence (verified against finite
differences to ~1e-7), so Gauss-Newton-CG converges the way the paper
reports.  The solver stack is:

* :class:`ScalarWaveInverseProblem` — misfit, gradient, Gauss-Newton
  Hessian-vector products (one forward + one adjoint wave solve per CG
  iteration, as in the paper);
* :func:`gauss_newton_cg` — Newton-CG with Armijo backtracking and a
  log-barrier safeguard for positivity;
* :class:`LBFGSPreconditioner` — Morales-Nocedal automatic
  preconditioning built from CG iterates, initialized with Frankel
  two-step stationary iterations on the regularization operator;
* :func:`multiscale_invert` — grid continuation from coarse material
  grids to fine, the paper's remedy for local minima.
"""

from repro.inverse.parametrization import MaterialGrid
from repro.inverse.regularization import TotalVariation, Tikhonov1D
from repro.inverse.fault_source import FaultLineSource2D
from repro.inverse.problem import ScalarWaveInverseProblem, Shot
from repro.inverse.gauss_newton import GNResult, gauss_newton_cg
from repro.inverse.precond import LBFGSPreconditioner, frankel_solve
from repro.inverse.multiscale import multiscale_invert
from repro.inverse.source_inversion import SourceInverseProblem
from repro.inverse.joint import JointResult, joint_invert
from repro.inverse.problem import gaussian_time_kernel
from repro.inverse.elastic import ElasticInverseProblem
from repro.inverse.attenuation import AttenuationInverseProblem

__all__ = [
    "MaterialGrid",
    "TotalVariation",
    "Tikhonov1D",
    "FaultLineSource2D",
    "ScalarWaveInverseProblem",
    "Shot",
    "gauss_newton_cg",
    "GNResult",
    "LBFGSPreconditioner",
    "frankel_solve",
    "multiscale_invert",
    "SourceInverseProblem",
    "joint_invert",
    "JointResult",
    "gaussian_time_kernel",
    "ElasticInverseProblem",
    "AttenuationInverseProblem",
]
