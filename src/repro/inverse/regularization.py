"""Regularization functionals (paper eq. 3.1).

* :class:`TotalVariation` — smoothed TV ``beta int sqrt(|grad m|^2 +
  eps^2)`` on a :class:`MaterialGrid`; "inhibits oscillations but in
  addition avoids smoothing of discontinuities in the material field,
  thereby preserving sharp interfaces prevalent in layered geologic
  media".  The Gauss-Newton (lagged-diffusivity) Hessian freezes the
  ``1/sqrt(...)`` weights at the current iterate, which keeps it SPD.
* :class:`Tikhonov1D` — ``(beta/2) int |grad p|^2`` for the fault
  source fields ``u0(x), t0(x), T(x)`` (penalizes oscillations along
  the fault).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.shape import shape_gradients
from repro.inverse.parametrization import MaterialGrid


class TotalVariation:
    """Smoothed total variation on a material grid."""

    def __init__(self, grid: MaterialGrid, beta: float, eps: float = 1e-3):
        self.grid = grid
        self.beta = float(beta)
        self.eps = float(eps)
        d = grid.d
        # cell-center gradient operators per axis: sparse (ncell, n)
        center = np.full((1, d), 0.5)
        g = shape_gradients(center, d)[0]  # (2^d, d), reference units
        ncell = int(np.prod(grid.shape))
        nn = 1 << d
        cells = np.stack(
            np.meshgrid(*[np.arange(n) for n in grid.shape], indexing="ij"),
            axis=-1,
        ).reshape(ncell, d)
        cols = np.empty((ncell, nn), dtype=np.int64)
        for k in range(nn):
            corner = cells + np.array([(k >> a) & 1 for a in range(d)])
            cols[:, k] = np.ravel_multi_index(tuple(corner.T), grid.node_shape)
        rows = np.repeat(np.arange(ncell), nn)
        self.G = []
        for a in range(d):
            vals = np.tile(g[:, a] / grid.h[a], (ncell, 1))
            self.G.append(
                sp.csr_matrix(
                    (vals.ravel(), (rows, cols.ravel())), shape=(ncell, grid.n)
                )
            )
        self.cell_volume = float(np.prod(grid.h))
        self.ncell = ncell

    def _grad_norms(self, m: np.ndarray):
        grads = [G @ m for G in self.G]
        s = np.sqrt(sum(g * g for g in grads) + self.eps**2)
        return grads, s

    def value(self, m: np.ndarray) -> float:
        _, s = self._grad_norms(m)
        return self.beta * self.cell_volume * float(np.sum(s))

    def gradient(self, m: np.ndarray) -> np.ndarray:
        grads, s = self._grad_norms(m)
        out = np.zeros(self.grid.n)
        for G, g in zip(self.G, grads):
            out += G.T @ (g / s)
        return self.beta * self.cell_volume * out

    def hessvec(self, m: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Lagged-diffusivity GN Hessian: weights frozen at ``m``."""
        _, s = self._grad_norms(m)
        out = np.zeros(self.grid.n)
        for G in self.G:
            out += G.T @ ((G @ v) / s)
        return self.beta * self.cell_volume * out


class Tikhonov1D:
    """``(beta/2) sum h |dp/dx|^2`` for a 1D parameter profile
    (fault-aligned source fields)."""

    def __init__(self, n: int, h: float, beta: float):
        self.n = int(n)
        self.h = float(h)
        self.beta = float(beta)
        if self.n >= 2:
            e = np.ones(self.n - 1) / self.h
            self.D = sp.diags(
                [-e, e], offsets=[0, 1], shape=(self.n - 1, self.n)
            ).tocsr()
        else:
            self.D = sp.csr_matrix((0, self.n))

    def value(self, p: np.ndarray) -> float:
        d = self.D @ p
        return 0.5 * self.beta * self.h * float(d @ d)

    def gradient(self, p: np.ndarray) -> np.ndarray:
        return self.beta * self.h * (self.D.T @ (self.D @ p))

    def hessvec(self, v: np.ndarray) -> np.ndarray:
        return self.beta * self.h * (self.D.T @ (self.D @ v))
