"""Multiscale grid continuation (paper Section 3.1, Figure 3.2).

"One of the nefarious properties of the nonlinear optimization
formulation of the inverse wave propagation problem is the existence of
numerous local minima, possessing a radius of Newton convergence
proportional to the wavelength of propagating waves. [...] Here we
appeal to multiscale grid continuation, which in our experience
circumvents the problem by keeping successively finer scale inversion
estimates within the radius of the ball of convergence."

:func:`multiscale_invert` solves the material inversion on a sequence
of material grids, coarse to fine, prolonging each solution to seed the
next level.  The wave grid stays fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.inverse.gauss_newton import GNResult, gauss_newton_cg
from repro.inverse.parametrization import MaterialGrid
from repro.inverse.precond import LBFGSPreconditioner
from repro.inverse.regularization import TotalVariation


@dataclass
class MultiscaleResult:
    """Per-level solutions and accounting."""

    levels: list  # (grid_shape, GNResult)
    m_final: np.ndarray
    grid_final: MaterialGrid

    @property
    def total_cg_iterations(self) -> int:
        return sum(r.total_cg_iterations for _, r in self.levels)


def multiscale_invert(
    make_problem: Callable[[MaterialGrid], object],
    grids: Sequence[MaterialGrid],
    m_init: float | np.ndarray,
    *,
    beta_tv: float = 0.0,
    tv_eps: float = 1e-3,
    newton_per_level: int = 8,
    cg_maxiter: int = 40,
    use_preconditioner: bool = True,
    verbose: bool = False,
    level_callback: Callable | None = None,
) -> MultiscaleResult:
    """Run the inversion over a coarse-to-fine material grid sequence.

    Parameters
    ----------
    make_problem:
        Factory ``make_problem(grid) -> ScalarWaveInverseProblem`` —
        called once per level, so each level's problem carries its own
        prolongation (and its TV regularizer can be attached here or via
        ``beta_tv``).
    grids:
        Material grids, coarse to fine.
    m_init:
        Homogeneous initial modulus (scalar) or nodal array on the
        coarsest grid.
    """
    import inspect

    try:
        two_arg_factory = (
            len(inspect.signature(make_problem).parameters) >= 2
        )
    except (TypeError, ValueError):  # builtins / partials without sig
        two_arg_factory = False

    levels = []
    m = None
    for li, grid in enumerate(grids):
        # a two-argument factory also receives the level index, so it
        # can vary e.g. the residual smoother (frequency continuation)
        problem = make_problem(grid, li) if two_arg_factory else make_problem(grid)
        if beta_tv > 0 and problem.reg is None:
            problem.reg = TotalVariation(grid, beta_tv, eps=tv_eps)
        if m is None:
            m = (
                np.full(grid.n, float(m_init))
                if np.isscalar(m_init)
                else np.asarray(m_init, dtype=float).copy()
            )
        else:
            m = grids[li - 1].to_finer(grid) @ m
        precond = (
            LBFGSPreconditioner(grid.n) if use_preconditioner else None
        )
        result = gauss_newton_cg(
            problem,
            m,
            max_newton=newton_per_level,
            cg_maxiter=cg_maxiter,
            precond=precond,
            verbose=verbose,
        )
        m = result.m
        levels.append((grid.shape, result))
        if verbose:
            print(
                f"level {li} {grid.shape}: J={result.objective:.4e} "
                f"newton={result.newton_iterations} cg={result.total_cg_iterations}"
            )
        if level_callback is not None:
            level_callback(li, grid, m, result)
    return MultiscaleResult(levels=levels, m_final=m, grid_final=grids[-1])
