"""Attenuation inversion (the paper's third unknown class).

The summary names "determining source, elastic, and **attenuation**
parameters for complex 3D basins" as the target inverse problem.  This
module inverts a mass-proportional Rayleigh damping field ``alpha(x)``
(the solver's anelasticity model at the discrete level) with the
elastic structure fixed, from receiver records — the same
discretize-then-optimize recipe as the other parameter classes.

The forward model is linear in ``alpha`` through the damping matrix
(``dC/dalpha_e`` is a constant lumping stencil), so the accumulation

    ``g_e = (dt/2) sum_k lam^{k+1,T} (dC/dalpha_e) (u^{k+1} - u^{k-1})``

is exact, and the Gauss-Newton product costs the usual one incremental
forward plus one adjoint solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.inverse.parametrization import MaterialGrid
from repro.solver.scalarwave import RegularGridScalarWave


@dataclass
class AttenuationForwardState:
    m: np.ndarray
    alpha_e: np.ndarray
    u: np.ndarray
    residual: np.ndarray


class AttenuationInverseProblem:
    """Invert the damping field ``alpha`` with ``mu`` known and fixed.

    Parameters mirror :class:`ScalarWaveInverseProblem`; ``m`` holds
    nodal ``alpha`` values on the material grid (1/s units).
    """

    def __init__(
        self,
        solver: RegularGridScalarWave,
        grid: MaterialGrid,
        mu_e: np.ndarray,
        receivers: np.ndarray,
        data: np.ndarray,
        dt: float,
        nsteps: int,
        forcing: Callable[[int], np.ndarray],
        *,
        barrier_gamma: float = 0.0,
        alpha_min: float = -1e-12,
    ):
        self.solver = solver
        self.grid = grid
        self.P = grid.to_elements(solver)
        self.mu_e = np.asarray(mu_e, dtype=float)
        self.receivers = np.asarray(receivers, dtype=np.int64)
        self.data = np.asarray(data, dtype=float)
        self.dt = float(dt)
        self.nsteps = int(nsteps)
        self.forcing = forcing
        self.barrier_gamma = float(barrier_gamma)
        self.mu_min = float(alpha_min)  # generic name for the GN driver
        self.n_wave_solves = 0

    def alpha_elements(self, m: np.ndarray) -> np.ndarray:
        return self.P @ m

    # ------------------------------------------------------------ forward

    def forward(self, m: np.ndarray) -> AttenuationForwardState:
        alpha_e = self.alpha_elements(m)
        if np.any(alpha_e < 0):
            raise FloatingPointError("negative attenuation")
        u = self.solver.march(
            self.mu_e, self.forcing, self.nsteps, self.dt, store=True,
            alpha=alpha_e,
        )
        self.n_wave_solves += 1
        return AttenuationForwardState(
            m=np.asarray(m, float).copy(),
            alpha_e=alpha_e,
            u=u,
            residual=u[:, self.receivers] - self.data,
        )

    def objective(self, m, state: AttenuationForwardState | None = None):
        if state is None:
            state = self.forward(m)
        parts = {"data": 0.5 * self.dt * float(np.sum(state.residual**2))}
        if self.barrier_gamma > 0:
            gap = m - self.mu_min
            if np.any(gap <= 0):
                return np.inf, parts, state
            parts["barrier"] = -self.barrier_gamma * float(np.sum(np.log(gap)))
        return sum(parts.values()), parts, state

    # ------------------------------------------------------------ adjoint

    def _adjoint(self, alpha_e: np.ndarray, rhs_series: np.ndarray):
        N = self.nsteps

        def forcing(mrev):
            j = N + 1 - mrev
            f = np.zeros(self.solver.nnode)
            f[self.receivers] = -self.dt * rhs_series[j]
            return f

        x = self.solver.march(
            self.mu_e, forcing, N, self.dt, store=True, alpha=alpha_e
        )
        self.n_wave_solves += 1
        lam = np.zeros((N + 1, self.solver.nnode))
        lam[2 : N + 1] = x[2 : N + 1][::-1]
        return lam

    def _accumulate(self, u: np.ndarray, lam: np.ndarray) -> np.ndarray:
        N = self.nsteps
        dt = self.dt
        g = np.zeros(self.solver.nelem)
        chunk = 128
        for k0 in range(1, N, chunk):
            ks = np.arange(k0, min(k0 + chunk, N))
            g += 0.5 * dt * self.solver.alpha_material_gradient_batch(
                u[ks + 1] - u[ks - 1], lam[ks + 1]
            )
        return self.P.T @ g

    def gradient(self, m, state: AttenuationForwardState | None = None):
        if state is None:
            state = self.forward(m)
        J, _, _ = self.objective(m, state)
        lam = self._adjoint(state.alpha_e, state.residual)
        g = self._accumulate(state.u, lam)
        if self.barrier_gamma > 0:
            g -= self.barrier_gamma / (m - self.mu_min)
        return g, J, state

    def gn_hessvec(self, v: np.ndarray, state: AttenuationForwardState):
        dt = self.dt
        dalpha_e = self.P @ np.asarray(v, dtype=float)
        C_delta = self.solver.volume_damping_diag(dalpha_e)
        u = state.u

        def forcing(k):
            return -0.5 * dt * C_delta * (u[k + 1] - u[k - 1])

        du = self.solver.march(
            self.mu_e, forcing, self.nsteps, dt, store=True,
            alpha=state.alpha_e,
        )
        self.n_wave_solves += 1
        lam_t = self._adjoint(state.alpha_e, du[:, self.receivers])
        Hv = self._accumulate(u, lam_t)
        if self.barrier_gamma > 0:
            Hv += self.barrier_gamma * v / (state.m - self.mu_min) ** 2
        return Hv
