"""Material inverse problem: misfit, exact discrete gradient, GN Hv.

Discretize-then-optimize on the leapfrog recurrence

    ``A+ u^{k+1} = (2M - dt^2 K(mu)) u^k - A- u^{k-1} + dt^2 b^k(mu)``

(``A+- = M +- (dt/2) C(mu)``, states ``u^0 = u^1 = 0``), with the
least-squares misfit ``J = (dt/2) sum_k sum_r (u^k_r - d^k_r)^2``.

The first-order conditions give the **adjoint recurrence** — the same
dissipative leapfrog run backward with the receiver residuals as
sources (paper eq. 3.3) — and the **material equation** (paper eq. 3.4)
as the per-element accumulation

    ``g_e = sum_k lam^{k+1,T} [ dt^2 K_e u^k
            + (dt/2) C_e (u^{k+1} - u^{k-1}) - dt^2 db^k/dmu_e ]``

which includes the absorbing-boundary and fault-coupling terms the
paper's strong form carries.  Everything is exact at the discrete
level, so the gradient matches finite differences to roundoff-limited
accuracy — the property Newton-CG convergence rests on.

Gauss-Newton Hessian-vector products cost one incremental forward and
one incremental adjoint solve, matching the paper's "each CG iteration
requires one forward and one adjoint wave propagation solution".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.inverse.fault_source import FaultLineSource2D, SourceParams
from repro.inverse.parametrization import MaterialGrid
from repro.inverse.regularization import TotalVariation
from repro.resilience import check_finite
from repro.solver.scalarwave import RegularGridScalarWave, batched_forcing

from repro import telemetry


def gaussian_time_kernel(dt: float, f_cut: float, *, width: float = 4.0) -> np.ndarray:
    """Symmetric Gaussian low-pass kernel for frequency continuation.

    Standard deviation ``sigma = 1 / (2 pi f_cut)`` seconds, sampled on
    the leapfrog lattice and normalized to unit sum (so a constant
    residual passes through unchanged).
    """
    if f_cut <= 0 or dt <= 0:
        raise ValueError("need positive dt and f_cut")
    sigma = 1.0 / (2.0 * np.pi * f_cut)
    half = max(1, int(np.ceil(width * sigma / dt)))
    t = np.arange(-half, half + 1) * dt
    w = np.exp(-0.5 * (t / sigma) ** 2)
    return w / w.sum()


@dataclass
class Shot:
    """One seismic event: its receiver set, observed records, and
    sources.  A multi-shot inversion sums the misfit over shots and
    runs all of them through *one* batched forward/adjoint march per
    gradient evaluation (the shots share the material iterate, so the
    wave operator is common — only the forcing columns differ)."""

    receivers: np.ndarray
    data: np.ndarray  # (nsteps + 1, nrec)
    fault: FaultLineSource2D | None = None
    source_params: SourceParams | None = None
    extra_forcing: Callable[[int], np.ndarray] | None = None

    def __post_init__(self):
        self.receivers = np.asarray(self.receivers, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=float)


@dataclass
class ForwardState:
    """Cached sweep results reused by Hessian-vector products."""

    m: np.ndarray
    mu_e: np.ndarray
    u: np.ndarray  # (nsteps+1, nnode) — or (nsteps+1, nnode, B) multi-shot
    residuals: list = field(default_factory=list)  # (nsteps+1, nrec) per shot

    @property
    def residual(self) -> np.ndarray:
        """The single-shot residual (errors on multi-shot states, where
        no one residual is canonical — use ``residuals``)."""
        if len(self.residuals) != 1:
            raise ValueError("multi-shot state: use .residuals")
        return self.residuals[0]


class ScalarWaveInverseProblem:
    """Invert the shear modulus field from receiver records.

    Parameters
    ----------
    solver:
        The wave substrate (2D antiplane or 3D scalar).
    grid:
        Material parameter grid; the unknown ``m`` are its nodal moduli.
    receivers:
        Node indices of the observation points.
    data:
        Observed records ``(nsteps + 1, nrec)`` (same leapfrog lattice).
    dt, nsteps:
        Time discretization (fixed across the inversion).
    fault / source_params:
        Optional 2D fault dipole source (its ``mu`` coupling is part of
        the gradient).  ``extra_forcing(k)`` adds any fixed sources
        (already scaled by ``dt^2``).
    reg:
        Total-variation regularizer on ``m`` (optional).
    barrier_gamma / mu_min:
        Log-barrier ``-gamma sum log(m - mu_min)`` enforcing positivity.
    residual_smoother:
        Optional symmetric 1D kernel ``w`` applied to the residual time
        series: the misfit becomes ``(dt/2) |F r|^2`` with ``F`` the
        (zero-padded) convolution by ``w``.  Because ``w`` is symmetric,
        ``F^T = F`` and the adjoint forcing is ``F(F r)`` — gradients
        stay exact.  This implements the paper's *frequency
        continuation*: early inversion levels see only the low-passed
        residual (see :func:`gaussian_time_kernel`).
    """

    def __init__(
        self,
        solver: RegularGridScalarWave,
        grid: MaterialGrid,
        receivers: np.ndarray | None,
        data: np.ndarray | None,
        dt: float,
        nsteps: int,
        *,
        fault: FaultLineSource2D | None = None,
        source_params: SourceParams | None = None,
        extra_forcing: Callable[[int], np.ndarray] | None = None,
        shots: Sequence[Shot] | None = None,
        reg: TotalVariation | None = None,
        barrier_gamma: float = 0.0,
        mu_min: float = 0.0,
        residual_smoother: np.ndarray | None = None,
    ):
        self.solver = solver
        self.grid = grid
        self.P = grid.to_elements(solver)
        if shots is not None:
            if receivers is not None or data is not None:
                raise ValueError("pass either (receivers, data, ...) or shots")
            if fault is not None or source_params is not None or extra_forcing is not None:
                raise ValueError("per-shot sources live on the Shot objects")
            self.shots = [
                s if isinstance(s, Shot) else Shot(**s) for s in shots
            ]
            if not self.shots:
                raise ValueError("need at least one shot")
        else:
            self.shots = [
                Shot(
                    receivers=receivers,
                    data=data,
                    fault=fault,
                    source_params=source_params,
                    extra_forcing=extra_forcing,
                )
            ]
        self.B = len(self.shots)
        #: single-shot problems keep the exact serial sweep paths (and
        #: bitwise results) of the original implementation
        self._single = self.B == 1
        for s in self.shots:
            if s.data.shape != (nsteps + 1, len(s.receivers)):
                raise ValueError(
                    f"shot data must be (nsteps+1, nrec) = "
                    f"{(nsteps + 1, len(s.receivers))}, got {s.data.shape}"
                )
        shot0 = self.shots[0]
        # legacy single-shot attribute surface (joint/source inversion
        # and the checkpointed gradient read these)
        self.receivers = shot0.receivers if self._single else None
        self.data = shot0.data if self._single else None
        self.fault = shot0.fault if self._single else None
        self.source_params = shot0.source_params if self._single else None
        self.extra_forcing = shot0.extra_forcing if self._single else None
        self.dt = float(dt)
        self.nsteps = int(nsteps)
        self.reg = reg
        self.barrier_gamma = float(barrier_gamma)
        self.mu_min = float(mu_min)
        if residual_smoother is not None:
            w = np.asarray(residual_smoother, dtype=float)
            if len(w) % 2 == 0 or not np.allclose(w, w[::-1]):
                raise ValueError(
                    "residual_smoother must be an odd-length symmetric kernel"
                )
            self.residual_smoother = w
        else:
            self.residual_smoother = None
        #: counts of wave-equation solves (forward + adjoint), reported
        #: by the Table 3.1 benchmark
        self.n_wave_solves = 0

    @classmethod
    def multi_shot(
        cls,
        solver: RegularGridScalarWave,
        grid: MaterialGrid,
        shots: Sequence[Shot],
        dt: float,
        nsteps: int,
        **kwargs,
    ) -> "ScalarWaveInverseProblem":
        """Multi-shot constructor: the misfit sums over ``shots`` and
        every gradient / Gauss-Newton Hv evaluation runs exactly one
        batched forward and one batched adjoint march regardless of
        the shot count."""
        return cls(solver, grid, None, None, dt, nsteps, shots=shots, **kwargs)

    @property
    def n(self) -> int:
        return self.grid.n

    def mu_elements(self, m: np.ndarray) -> np.ndarray:
        return self.P @ m

    # ------------------------------------------------------------ forward

    def _shot_forcing(self, shot: Shot, mu_e: np.ndarray):
        parts = []
        if shot.fault is not None:
            if shot.source_params is None:
                raise ValueError("fault requires source_params")
            parts.append(shot.fault.forcing(mu_e, shot.source_params, self.dt))
        if shot.extra_forcing is not None:
            parts.append(shot.extra_forcing)
        if not parts:
            raise ValueError("no sources configured")
        if len(parts) == 1:
            return parts[0]

        def combined(k):
            out = None
            for p in parts:
                f = p(k)
                if f is None:
                    continue
                out = f if out is None else out + f
            return out

        return combined

    def _total_forcing(self, mu_e: np.ndarray):
        if not self._single:
            raise ValueError("multi-shot problems force per shot")
        return self._shot_forcing(self.shots[0], mu_e)

    def forward(self, m: np.ndarray) -> ForwardState:
        mu_e = self.mu_elements(m)
        if np.any(mu_e <= 0):
            raise FloatingPointError("non-positive modulus in forward model")
        with telemetry.span("inverse.forward") as _s:
            if self._single:
                u = self.solver.march(
                    mu_e, self._total_forcing(mu_e), self.nsteps, self.dt,
                    store=True,
                )
                self.n_wave_solves += 1
                residuals = [u[:, self.receivers] - self.data]
            else:
                # ONE batched march advances every shot's state column
                cols = [self._shot_forcing(s, mu_e) for s in self.shots]
                u = self.solver.march(
                    mu_e, batched_forcing(cols, self.solver.nnode),
                    self.nsteps, self.dt, store=True, batch=self.B,
                )
                self.n_wave_solves += 1
                residuals = [
                    u[:, s.receivers, i] - s.data
                    for i, s in enumerate(self.shots)
                ]
            _s.add("wave_solves", 1)
        # an unstable forward march propagates NaN garbage into the
        # misfit and every adjoint quantity; any non-finite value
        # reaches the final state, so one check here catches it
        check_finite(u[-1], step=self.nsteps, field="u")
        return ForwardState(m=np.asarray(m, float).copy(), mu_e=mu_e, u=u,
                            residuals=residuals)

    # ---------------------------------------------------------- objective

    def _smooth(self, r: np.ndarray) -> np.ndarray:
        """Apply the symmetric residual filter ``F`` along time."""
        if self.residual_smoother is None:
            return r
        from scipy.ndimage import convolve1d

        return convolve1d(r, self.residual_smoother, axis=0, mode="constant")

    def data_misfit(self, state: ForwardState) -> float:
        return 0.5 * self.dt * float(
            sum(np.sum(self._smooth(r) ** 2) for r in state.residuals)
        )

    def objective(self, m: np.ndarray, state: ForwardState | None = None):
        """Total objective and its parts; reuses ``state`` if given."""
        if state is None:
            state = self.forward(m)
        parts = {"data": self.data_misfit(state)}
        if self.reg is not None:
            parts["reg"] = self.reg.value(m)
        if self.barrier_gamma > 0:
            gap = m - self.mu_min
            if np.any(gap <= 0):
                return np.inf, parts, state
            parts["barrier"] = -self.barrier_gamma * float(np.sum(np.log(gap)))
        return sum(parts.values()), parts, state

    # ----------------------------------------------------------- adjoint

    def _adjoint_states(
        self, mu_e: np.ndarray, rhs_series: np.ndarray
    ) -> np.ndarray:
        """Solve the adjoint recurrence for nodal forcing series
        ``rhs_series`` of shape ``(nsteps+1, nrec)`` (receiver values);
        returns ``lam`` with ``lam[j]`` valid for ``j = 2 .. nsteps``.

        The adjoint is the same leapfrog with time reversed: with
        ``x^m := lam^{N+2-m}``, the recurrence and the dissipative sign
        of the absorbing boundary are unchanged (paper eq. 3.3).
        """
        N = self.nsteps
        # single reusable forcing buffer: only the receiver entries are
        # ever nonzero, so overwriting them each step keeps it correct
        fbuf = np.zeros(self.solver.nnode)

        def forcing(mrev: int):
            j = N + 1 - mrev
            fbuf[self.receivers] = -self.dt * rhs_series[j]
            return fbuf

        with telemetry.span("inverse.adjoint") as _s:
            x = self.solver.march(mu_e, forcing, N, self.dt, store=True)
            _s.add("wave_solves", 1)
        self.n_wave_solves += 1
        lam = np.zeros((N + 1, self.solver.nnode))
        lam[2 : N + 1] = x[2 : N + 1][::-1]
        return lam

    def _adjoint_states_multi(
        self, mu_e: np.ndarray, rhs_list: list[np.ndarray]
    ) -> np.ndarray:
        """Batched :meth:`_adjoint_states`: shot ``s``'s receiver
        residual series drives adjoint column ``s``, all columns in
        ONE reversed march.  Returns ``lam`` ``(N+1, nnode, B)``."""
        N = self.nsteps
        fbuf = np.zeros((self.solver.nnode, self.B))
        recs = [s.receivers for s in self.shots]

        def forcing(mrev: int):
            j = N + 1 - mrev
            for s, rs in enumerate(recs):
                fbuf[rs, s] = -self.dt * rhs_list[s][j]
            return fbuf

        with telemetry.span("inverse.adjoint") as _s:
            x = self.solver.march(
                mu_e, forcing, N, self.dt, store=True, batch=self.B
            )
            _s.add("wave_solves", 1)
        self.n_wave_solves += 1
        lam = np.zeros((N + 1, self.solver.nnode, self.B))
        lam[2 : N + 1] = x[2 : N + 1][::-1]
        return lam

    def _material_accumulation(
        self, mu_e: np.ndarray, u: np.ndarray, lam: np.ndarray
    ) -> np.ndarray:
        """``g_e = sum_k lam^{k+1,T} [dt^2 K_e u^k + (dt/2) C_e (u^{k+1}
        - u^{k-1}) - dt^2 db^k/dmu_e]`` — shared by gradient and GN Hv.

        Vectorized over time in chunks (the accumulation dominates the
        cost of a gradient once the wave solves are cheap).  Multi-shot
        fields ``(nt, nnode, B)`` contract over time *and* shots; the
        per-shot fault coupling slices its own column."""
        N = self.nsteps
        dt = self.dt
        g = np.zeros(self.solver.nelem)
        chunk = 128
        multi = u.ndim == 3
        for k0 in range(1, N, chunk):
            ks = np.arange(k0, min(k0 + chunk, N))
            L = lam[ks + 1]
            g += dt**2 * self.solver.K_material_gradient_batch(u[ks], L)
            g += 0.5 * dt * self.solver.C_material_gradient_batch(
                u[ks + 1] - u[ks - 1], L, mu_e
            )
            for s, shot in enumerate(self.shots):
                if shot.fault is None or shot.source_params is None:
                    continue
                Ls = L[:, :, s] if multi else L
                g -= dt**2 * shot.fault.material_gradient_batch(
                    Ls, shot.source_params, ks * dt
                )
        return g

    def gradient(self, m: np.ndarray, state: ForwardState | None = None):
        """Exact discrete gradient; returns ``(g, J, state)``.

        Multi-shot: the residual columns of every shot drive ONE
        batched adjoint march (on top of the one batched forward march
        in :meth:`forward`), so the wave-solve count per gradient is 2
        regardless of the shot count."""
        if state is None:
            state = self.forward(m)
        J, _, _ = self.objective(m, state)
        # adjoint forcing: F^T F r (= F F r for the symmetric smoother)
        if self._single:
            lam = self._adjoint_states(
                state.mu_e, self._smooth(self._smooth(state.residual))
            )
        else:
            lam = self._adjoint_states_multi(
                state.mu_e,
                [self._smooth(self._smooth(r)) for r in state.residuals],
            )
        g_e = self._material_accumulation(state.mu_e, state.u, lam)
        g = self.P.T @ g_e
        if self.reg is not None:
            g = g + self.reg.gradient(m)
        if self.barrier_gamma > 0:
            g = g - self.barrier_gamma / (m - self.mu_min)
        return g, J, state

    def gradient_checkpointed(
        self, m: np.ndarray, slots: int = 8
    ) -> tuple[np.ndarray, float]:
        """Memory-bounded gradient via Griewank checkpointing [21].

        Instead of storing all ``nsteps + 1`` forward states, the
        forward sweep keeps ``slots`` two-state snapshots and the
        receiver traces; during the backward (adjoint) sweep the needed
        forward states are replayed segment by segment.  Peak state
        memory drops from ``O(N)`` to ``O(N / slots + slots)`` at the
        price of one extra forward recomputation.

        Returns ``(g, J)``; the result matches :meth:`gradient` to
        roundoff (tested).
        """
        from repro.solver.checkpoint import (
            CheckpointedStates,
            checkpoint_schedule,
        )

        if not self._single:
            raise NotImplementedError(
                "checkpointed gradients are single-shot only; multi-shot "
                "gradients already run one batched sweep each way"
            )
        mu_e = self.mu_elements(m)
        if np.any(mu_e <= 0):
            raise FloatingPointError("non-positive modulus in forward model")
        N = self.nsteps
        dt = self.dt
        solver = self.solver
        forcing = self._total_forcing(mu_e)

        # forward sweep: snapshots + receiver traces only
        sched = set(checkpoint_schedule(N, slots))
        snaps: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        traces = np.zeros((N + 1, len(self.receivers)))
        last: dict = {}

        def on_step(k, x):
            traces[k] = x[self.receivers]
            if k - 1 in sched:
                snaps[k - 1] = (last["x"], x.copy())
            last["x"] = x.copy()

        solver.march(mu_e, forcing, N, dt, store=False, on_step=on_step)
        self.n_wave_solves += 1
        residual = traces - self.data
        J = 0.5 * dt * float(np.sum(self._smooth(residual) ** 2))
        residual_adj = self._smooth(self._smooth(residual))
        if self.reg is not None:
            J += self.reg.value(m)
        if self.barrier_gamma > 0:
            J += -self.barrier_gamma * float(
                np.sum(np.log(m - self.mu_min))
            )

        # replay machinery for the forward states
        C = solver.damping_diag(mu_e)
        a_plus = solver.m + 0.5 * dt * C
        a_minus = solver.m - 0.5 * dt * C

        def step_fn(k, x_prev, x):
            f = forcing(k)
            r = 2 * solver.m * x - dt**2 * solver.apply_K(mu_e, x)
            r -= a_minus * x_prev
            if f is not None:
                r = r + f
            return r / a_plus

        states = CheckpointedStates(step_fn, snaps, N)

        # adjoint sweep with on-the-fly accumulation: reversed step mrev
        # carries lam^{N+2-mrev}; the material terms for k = N+1-mrev
        # need u^{k-1}, u^k, u^{k+1}
        g_e = np.zeros(solver.nelem)
        adj_fbuf = np.zeros(solver.nnode)

        def adj_forcing(mrev):
            j = N + 1 - mrev
            adj_fbuf[self.receivers] = -dt * residual_adj[j]
            return adj_fbuf

        def adj_on_step(mrev, x):
            j = N + 2 - mrev  # lam index
            k = j - 1
            if not (1 <= k <= N - 1) or not x.any():
                return
            # descending access order keeps the replay cache warm
            up = states.state(k + 1)
            uk = states.state(k)
            um = states.state(k - 1)
            g_e[:] += dt**2 * solver.K_material_gradient(uk, x)
            g_e[:] += 0.5 * dt * solver.C_material_gradient(up - um, x, mu_e)
            if self.fault is not None and self.source_params is not None:
                proj = self.fault.lam_projection(x)
                g_e[:] -= dt**2 * self.fault.material_gradient_term(
                    proj, self.source_params, k * dt
                )

        solver.march(
            mu_e, adj_forcing, N, dt, store=False, on_step=adj_on_step
        )
        self.n_wave_solves += 1
        g = self.P.T @ g_e
        if self.reg is not None:
            g = g + self.reg.gradient(m)
        if self.barrier_gamma > 0:
            g = g - self.barrier_gamma / (m - self.mu_min)
        return g, J

    # ----------------------------------------------- Gauss-Newton Hessian

    def gn_hessvec(self, v: np.ndarray, state: ForwardState) -> np.ndarray:
        """Gauss-Newton Hessian action ``H v`` at ``state.m``.

        One incremental forward plus one incremental adjoint solve —
        batched over all shots for multi-shot problems (wave-solve
        count 2 per call regardless of the shot count).
        """
        mu_e = state.mu_e
        u = state.u
        dmu_e = self.P @ v
        dt = self.dt
        N = self.nsteps
        C_delta = self.solver.damping_diag_perturbation(mu_e, dmu_e)
        if self._single:
            fault_f = (
                self.fault.forcing_from_mu_perturbation(
                    dmu_e, self.source_params, dt
                )
                if self.fault is not None
                else None
            )

            def forcing(k):
                f = -0.5 * dt * C_delta * (u[k + 1] - u[k - 1])
                f -= dt**2 * self.solver.apply_K(dmu_e, u[k])
                if fault_f is not None:
                    f += fault_f(k)
                return f

            with telemetry.span("inverse.gn_hessvec") as _s:
                du = self.solver.march(mu_e, forcing, N, dt, store=True)
                _s.add("wave_solves", 1)
            self.n_wave_solves += 1
            lam_t = self._adjoint_states(
                mu_e, self._smooth(self._smooth(du[:, self.receivers]))
            )
        else:
            C_col = C_delta[:, None]
            fault_fs = [
                s.fault.forcing_from_mu_perturbation(
                    dmu_e, s.source_params, dt
                )
                if s.fault is not None
                else None
                for s in self.shots
            ]
            fblock = np.empty((self.solver.nnode, self.B))

            def forcing(k):
                # incremental forcing for every shot column at once;
                # the stiffness term is one level-3 apply on u^k's
                # (nnode, B) block
                np.subtract(u[k + 1], u[k - 1], out=fblock)
                np.multiply(fblock, (-0.5 * dt) * C_col, out=fblock)
                np.subtract(
                    fblock,
                    dt**2 * self.solver.apply_K(dmu_e, u[k]),
                    out=fblock,
                )
                for s, ff in enumerate(fault_fs):
                    if ff is not None:
                        fblock[:, s] += ff(k)
                return fblock

            with telemetry.span("inverse.gn_hessvec") as _s:
                du = self.solver.march(
                    mu_e, forcing, N, dt, store=True, batch=self.B
                )
                _s.add("wave_solves", 1)
            self.n_wave_solves += 1
            lam_t = self._adjoint_states_multi(
                mu_e,
                [
                    self._smooth(self._smooth(du[:, s.receivers, i]))
                    for i, s in enumerate(self.shots)
                ],
            )
        h_e = self._material_accumulation(mu_e, u, lam_t)
        Hv = self.P.T @ h_e
        if self.reg is not None:
            Hv = Hv + self.reg.hessvec(state.m, v)
        if self.barrier_gamma > 0:
            Hv = Hv + self.barrier_gamma * v / (state.m - self.mu_min) ** 2
        return Hv
