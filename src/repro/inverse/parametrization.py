"""Material parameter grids and prolongation operators.

The inversion parameter is the shear modulus at the nodes of a coarse
regular *material grid* over the same box as the wave grid (the paper's
"piecewise (bi/tri)linear" material approximation).  Two sparse
prolongations connect the spaces:

* ``to_elements`` — material-grid nodal values, interpolated
  multilinearly at wave-element centers, give the per-element ``mu``
  the solver consumes;
* ``to_finer`` — nodal interpolation onto the next (refined) material
  grid, used by the multiscale continuation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.fem.shape import shape_functions
from repro.solver.scalarwave import RegularGridScalarWave


class MaterialGrid:
    """A regular node-based parameter grid over ``[0, n_i * h]``.

    Parameters
    ----------
    shape:
        Cells per axis (nodes are ``shape + 1``); same axis order as the
        wave grid.
    lengths:
        Physical box extents (meters), matching the wave grid's.
    """

    def __init__(self, shape, lengths):
        self.shape = tuple(int(n) for n in shape)
        self.d = len(self.shape)
        self.lengths = tuple(float(x) for x in lengths)
        if len(self.lengths) != self.d:
            raise ValueError("shape and lengths dimensions differ")
        self.node_shape = tuple(n + 1 for n in self.shape)
        self.n = int(np.prod(self.node_shape))
        self.h = np.array(
            [L / n for L, n in zip(self.lengths, self.shape)]
        )

    def node_coords(self) -> np.ndarray:
        grids = np.meshgrid(
            *[np.arange(n + 1) * hh for n, hh in zip(self.shape, self.h)],
            indexing="ij",
        )
        return np.stack([g.ravel() for g in grids], axis=1)

    def interpolation_matrix(self, points: np.ndarray) -> sp.csr_matrix:
        """Sparse multilinear interpolation from grid nodes to arbitrary
        points inside the box, shape ``(npts, n)``."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        npts = len(pts)
        # cell index and local coordinate per axis
        rel = pts / self.h[None, :]
        cell = np.minimum(np.floor(rel).astype(np.int64), np.array(self.shape) - 1)
        cell = np.maximum(cell, 0)
        xi = np.clip(rel - cell, 0.0, 1.0)
        N = shape_functions(xi, self.d)  # (npts, 2^d)
        nn = 1 << self.d
        cols = np.empty((npts, nn), dtype=np.int64)
        for k in range(nn):
            corner = cell + np.array(
                [(k >> a) & 1 for a in range(self.d)], dtype=np.int64
            )
            cols[:, k] = np.ravel_multi_index(tuple(corner.T), self.node_shape)
        rows = np.repeat(np.arange(npts), nn)
        return sp.csr_matrix(
            (N.ravel(), (rows, cols.ravel())), shape=(npts, self.n)
        )

    def to_elements(self, solver: RegularGridScalarWave) -> sp.csr_matrix:
        """Prolongation to per-element values of a wave grid."""
        if solver.d != self.d:
            raise ValueError("dimension mismatch")
        return self.interpolation_matrix(solver.elem_centers())

    def to_finer(self, fine: "MaterialGrid") -> sp.csr_matrix:
        """Prolongation to a finer material grid's nodes."""
        return self.interpolation_matrix(fine.node_coords())

    def sample(self, fn) -> np.ndarray:
        """Evaluate a callable field at the grid nodes."""
        return np.asarray(fn(self.node_coords()), dtype=float)
