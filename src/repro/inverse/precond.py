"""Reduced-Hessian preconditioning (paper Section 3.1, [13, 14, 26]).

:class:`LBFGSPreconditioner` implements Morales-Nocedal automatic
preconditioning: curvature pairs ``(s, H s)`` harvested from the CG
iterations of one Gauss-Newton step build a limited-memory BFGS
approximation of the reduced Hessian inverse that preconditions the
*next* step's CG.  Its base matrix ``H0`` applies a few **Frankel
two-step** (second-order stationary Richardson) iterations to the
regularization operator — the cheap, spectrally matched part of the
Hessian.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np


def frankel_solve(
    apply_A: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    lam_min: float,
    lam_max: float,
    iters: int = 8,
) -> np.ndarray:
    """Frankel's two-step stationary iteration for SPD ``A x = b``.

    With spectrum in ``[lam_min, lam_max]``:

        ``x_{k+1} = x_k + beta (x_k - x_{k-1}) + gamma (b - A x_k)``,
        ``gamma = 4 / (sqrt(lam_min) + sqrt(lam_max))^2``,
        ``beta = ((sqrt(lam_max) - sqrt(lam_min)) /
                  (sqrt(lam_max) + sqrt(lam_min)))^2``

    — the stationary limit of the Chebyshev semi-iteration, with
    asymptotic convergence factor ``sqrt(beta)``.
    """
    if not 0 < lam_min <= lam_max:
        raise ValueError("need 0 < lam_min <= lam_max")
    sa, sb = np.sqrt(lam_min), np.sqrt(lam_max)
    gamma = 4.0 / (sa + sb) ** 2
    beta = ((sb - sa) / (sb + sa)) ** 2
    x_prev = np.zeros_like(b)
    # first step: optimal first-order Richardson
    x = (2.0 / (lam_min + lam_max)) * b
    for _ in range(iters):
        r = b - apply_A(x)
        x_next = x + beta * (x - x_prev) + gamma * r
        x_prev, x = x, x_next
    return x


def power_estimate_lmax(
    apply_A: Callable[[np.ndarray], np.ndarray],
    n: int,
    iters: int = 20,
    seed: int = 0,
) -> float:
    """Largest-eigenvalue estimate by power iteration."""
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    lam = 1.0
    for _ in range(iters):
        w = apply_A(v)
        lam = float(v @ w)
        nw = np.linalg.norm(w)
        if nw == 0:
            return 1.0
        v = w / nw
    return max(lam, 1e-30)


class LBFGSPreconditioner:
    """Morales-Nocedal automatic preconditioner.

    Parameters
    ----------
    n:
        Parameter dimension.
    memory:
        Number of ``(s, y)`` pairs retained.
    base_apply:
        Optional ``H0 r`` action (e.g. Frankel iterations on the
        regularization operator); identity when None.
    """

    def __init__(
        self,
        n: int,
        memory: int = 10,
        base_apply: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        self.n = int(n)
        self.memory = int(memory)
        self.base_apply = base_apply
        self.pairs: deque = deque(maxlen=self.memory)
        self._staged: list = []

    def stage_pair(self, s: np.ndarray, y: np.ndarray) -> None:
        """Record a curvature pair from the current CG solve; it becomes
        active for the *next* Newton iteration (Morales-Nocedal)."""
        sy = float(s @ y)
        if sy > 1e-12 * np.linalg.norm(s) * np.linalg.norm(y):
            self._staged.append((s.copy(), y.copy(), sy))

    def commit(self) -> None:
        """Promote staged pairs (call between Newton iterations)."""
        for p in self._staged[-self.memory :]:
            self.pairs.append(p)
        self._staged = []

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Two-loop recursion ``H_lbfgs r``."""
        q = r.copy()
        alphas = []
        for s, y, sy in reversed(self.pairs):
            a = (s @ q) / sy
            alphas.append(a)
            q = q - a * y
        if self.base_apply is not None:
            q = self.base_apply(q)
        else:
            if self.pairs:
                s, y, sy = self.pairs[-1]
                q = q * (sy / (y @ y))
        for (s, y, sy), a in zip(self.pairs, reversed(alphas)):
            b = (y @ q) / sy
            q = q + (a - b) * s
        return q
