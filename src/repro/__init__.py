"""repro: reproduction of Akcelik et al., "High Resolution Forward and
Inverse Earthquake Modeling on Terascale Computers" (SC2003).

The package implements the paper's two halves:

* **Forward modeling** — octree-based multiresolution hexahedral meshes
  (:mod:`repro.octree`, :mod:`repro.etree`, :mod:`repro.mesh`), trilinear
  hexahedral Galerkin finite elements with element-based dense matvecs
  (:mod:`repro.fem`), Stacey absorbing boundaries and Rayleigh damping
  (:mod:`repro.physics`), an explicit central-difference solver with
  hanging-node projection (:mod:`repro.solver`), and a simulated-MPI
  parallel layer with an AlphaServer machine model (:mod:`repro.parallel`).

* **Inverse modeling** — discrete-adjoint scalar wave inversion for
  material and source fields with total-variation/Tikhonov regularization,
  Gauss-Newton-CG, reduced-Hessian preconditioning and multiscale grid
  continuation (:mod:`repro.inverse`).

High-level entry points live in :mod:`repro.core`:

>>> from repro.core import ForwardSimulation, MaterialInversion
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "octree",
    "etree",
    "mesh",
    "fem",
    "physics",
    "materials",
    "sources",
    "solver",
    "parallel",
    "analytic",
    "inverse",
    "io",
    "util",
]
