"""Sorted linear octrees and wavelength-adaptive construction.

A *linear octree* stores only the leaf octants, as a sorted array of
packed Morton-code keys (paper Section 2.3, [19]).  Because the Morton
codes of all lattice points inside an octant form a contiguous range,
point location is a binary search.

:func:`build_adaptive_octree` implements the paper's refinement rule:
given a local target element size (``h = vs / (N_lambda * f_max)`` for
seismic meshes), an octant is refined while it is larger than the target
size at its location.  Non-cubic domains are supported through a box
fraction with power-of-two denominators, e.g. ``(1, 1, 3/8)`` meshes an
80 x 80 x 30 km box inside an 80 km cube.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Sequence

import numpy as np

from repro.octree.morton import MAX_COORD, MAX_LEVEL, morton_encode
from repro.octree.octant import (
    octant_anchor,
    octant_children,
    octant_size,
    pack_key,
    unpack_key,
)


def _binary_fraction_ticks(frac: float) -> int:
    """Convert a box fraction to lattice ticks, requiring a power-of-two
    denominator so octant boundaries can align with the box exactly."""
    f = Fraction(frac).limit_denominator(MAX_COORD)
    if f <= 0 or f > 1:
        raise ValueError(f"box fraction must be in (0, 1], got {frac}")
    if f.denominator & (f.denominator - 1):
        raise ValueError(
            f"box fraction {frac} must have a power-of-two denominator "
            "(e.g. 3/8) so octants align with the box boundary"
        )
    return f.numerator * (MAX_COORD // f.denominator)


class LinearOctree:
    """Immutable sorted array of leaf octants.

    Parameters
    ----------
    keys:
        Packed ``(morton, level)`` keys of the leaves.  They are sorted
        on construction; the leaves must tile a region without overlap
        (this is checked lazily by :meth:`validate`).
    """

    def __init__(self, keys: np.ndarray):
        keys = np.asarray(keys, dtype=np.uint64)
        self.keys = np.sort(keys)
        morton, level = unpack_key(self.keys)
        self.mortons = morton
        self.levels = level
        x, y, z, _ = octant_anchor(self.keys)
        #: integer anchor coordinates, shape (n, 3)
        self.anchors = np.stack([x, y, z], axis=1)
        #: integer edge lengths, shape (n,)
        self.sizes = octant_size(self.levels)

    def __len__(self) -> int:
        return len(self.keys)

    def __eq__(self, other) -> bool:
        return isinstance(other, LinearOctree) and np.array_equal(
            self.keys, other.keys
        )

    def __hash__(self):  # pragma: no cover - arrays are not hashable
        return NotImplemented

    def validate(self) -> None:
        """Check the leaves are unique and non-overlapping (Morton ranges
        of consecutive leaves must not intersect)."""
        if len(self.keys) == 0:
            return
        if np.any(np.diff(self.keys.view(np.uint64)) == 0):
            raise ValueError("duplicate leaf keys")
        span = self.sizes.astype(np.uint64) ** np.uint64(3)
        ends = self.mortons + span
        if np.any(ends[:-1] > self.mortons[1:]):
            raise ValueError("overlapping leaves")

    def locate(self, points: np.ndarray) -> np.ndarray:
        """Return the index of the leaf containing each integer lattice
        point, or -1 for points outside every leaf.

        ``points`` is integer, shape ``(n, 3)``; a point is *contained*
        when ``anchor <= p < anchor + size`` componentwise.
        """
        points = np.asarray(points, dtype=np.int64)
        in_lattice = np.all((points >= 0) & (points < MAX_COORD), axis=1)
        q = np.where(in_lattice[:, None], points, 0)
        codes = morton_encode(q[:, 0], q[:, 1], q[:, 2])
        idx = np.searchsorted(self.mortons, codes, side="right") - 1
        ok = idx >= 0
        safe = np.where(ok, idx, 0)
        rel = points - self.anchors[safe]
        inside = np.all((rel >= 0) & (rel < self.sizes[safe, None]), axis=1)
        return np.where(ok & inside & in_lattice, idx, -1)

    def covered_volume(self) -> int:
        """Total lattice volume covered by the leaves."""
        return int(np.sum(self.sizes.astype(object) ** 3))


def build_adaptive_octree(
    target_size: Callable[[np.ndarray, np.ndarray], np.ndarray],
    *,
    max_level: int,
    min_level: int = 0,
    box_frac: Sequence[float] = (1.0, 1.0, 1.0),
) -> LinearOctree:
    """Construct a wavelength-adaptive linear octree (unbalanced).

    Parameters
    ----------
    target_size:
        Callable ``target_size(centers, sizes) -> h`` mapping octant
        centers (``(n, 3)`` float, in units of the root cube ``[0, 1]``)
        and current octant sizes (``(n,)`` float, same units) to the
        locally acceptable element size.  An octant is refined while its
        size exceeds the target.  For seismic meshing this is
        ``vs(x) / (N_lambda * f_max * L)`` (see
        :func:`repro.mesh.hexmesh.wavelength_target`).
    max_level / min_level:
        Refinement bounds.  ``min_level`` is also raised as needed so
        octants align with ``box_frac``.
    box_frac:
        Fractions of the root cube occupied by the meshed box in each
        axis; must have power-of-two denominators.

    Returns
    -------
    LinearOctree
        Leaves tiling exactly the requested box.
    """
    if not 0 <= min_level <= max_level <= MAX_LEVEL:
        raise ValueError("need 0 <= min_level <= max_level <= MAX_LEVEL")
    box_ticks = np.array([_binary_fraction_ticks(f) for f in box_frac])
    # level at which octants can align with the box boundary
    align_level = 0
    for t in box_ticks:
        while t % octant_size(align_level) != 0:
            align_level += 1
    min_level = max(min_level, align_level)

    leaves: list[np.ndarray] = []
    root = pack_key(np.uint64(0), np.uint64(0))
    frontier = np.array([root], dtype=np.uint64)
    for level in range(0, max_level + 1):
        if len(frontier) == 0:
            break
        x, y, zc, lvl = octant_anchor(frontier)
        size = octant_size(lvl)
        anchors = np.stack([x, y, zc], axis=1)
        # octants fully outside the box are dropped
        outside = np.any(anchors >= box_ticks, axis=1)
        frontier = frontier[~outside]
        anchors = anchors[~outside]
        size = size[~outside]
        if len(frontier) == 0:
            break
        crosses = np.any(anchors + size[:, None] > box_ticks, axis=1)
        centers = (anchors + 0.5 * size[:, None]) / MAX_COORD
        h = np.asarray(target_size(centers, size / MAX_COORD), dtype=float)
        too_big = (size / MAX_COORD) > h + 1e-15
        refine = crosses | (level < min_level) | (too_big & (level < max_level))
        if level == max_level:
            refine = crosses  # cannot refine further except to resolve box
            if np.any(crosses):
                raise ValueError("max_level too small to align with box_frac")
        leaves.append(frontier[~refine])
        if np.any(refine):
            frontier = octant_children(frontier[refine]).ravel()
        else:
            frontier = np.array([], dtype=np.uint64)

    all_keys = np.concatenate(leaves) if leaves else np.array([], dtype=np.uint64)
    tree = LinearOctree(all_keys)
    return tree
