"""Octant key arithmetic.

Following the paper (Section 2.3), an octant is identified by the Morton
code of its lower-left corner with its level appended: we pack the
48-bit Morton code and the 5-bit level into a single uint64,
``key = (morton << 5) | level``.  All functions are vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.octree.morton import MAX_LEVEL, morton_decode, morton_encode

_U = np.uint64

#: Number of low bits used to store the level inside a packed key.
LEVEL_BITS = 5
_LEVEL_MASK = _U((1 << LEVEL_BITS) - 1)


def pack_key(morton, level) -> np.ndarray:
    """Pack (morton, level) into a single uint64 key, Morton-major."""
    return (np.asarray(morton, dtype=np.uint64) << _U(LEVEL_BITS)) | (
        np.asarray(level, dtype=np.uint64) & _LEVEL_MASK
    )


def unpack_key(key) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_key`: returns ``(morton, level)``."""
    key = np.asarray(key, dtype=np.uint64)
    return key >> _U(LEVEL_BITS), (key & _LEVEL_MASK).astype(np.int64)


def octant_size(level) -> np.ndarray:
    """Edge length of a level-``level`` octant in lattice ticks."""
    return np.asarray(1 << (MAX_LEVEL - np.asarray(level, dtype=np.int64)))


def octant_anchor(key) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lower-left corner ``(x, y, z)`` and ``level`` of packed keys."""
    morton, level = unpack_key(key)
    x, y, z = morton_decode(morton)
    return x.astype(np.int64), y.astype(np.int64), z.astype(np.int64), level


def octant_parent(key) -> np.ndarray:
    """Packed key of each octant's parent (level must be >= 1)."""
    x, y, z, level = octant_anchor(key)
    if np.any(level < 1):
        raise ValueError("root octant has no parent")
    psize = octant_size(level - 1)
    px = (x // psize) * psize
    py = (y // psize) * psize
    pz = (z // psize) * psize
    return pack_key(morton_encode(px, py, pz), level - 1)


def octant_children(key) -> np.ndarray:
    """Packed keys of the 8 children of each octant, shape ``(..., 8)``.

    Children are returned in Morton order, so the flattened output of a
    Morton-sorted input remains Morton-sorted.
    """
    x, y, z, level = octant_anchor(key)
    if np.any(level >= MAX_LEVEL):
        raise ValueError("cannot refine beyond MAX_LEVEL")
    half = octant_size(level + 1)
    offs = np.array(
        [(i & 1, (i >> 1) & 1, (i >> 2) & 1) for i in range(8)], dtype=np.int64
    )
    cx = x[..., None] + offs[:, 0] * half[..., None]
    cy = y[..., None] + offs[:, 1] * half[..., None]
    cz = z[..., None] + offs[:, 2] * half[..., None]
    lvl = np.broadcast_to((level + 1)[..., None], cx.shape)
    return pack_key(morton_encode(cx, cy, cz), lvl)


def is_ancestor(anc_key, desc_key) -> np.ndarray:
    """True where ``anc_key`` is a strict ancestor of ``desc_key``."""
    ax, ay, az, alvl = octant_anchor(anc_key)
    dx, dy, dz, dlvl = octant_anchor(desc_key)
    asz = octant_size(alvl)
    inside = (
        (dx >= ax)
        & (dx < ax + asz)
        & (dy >= ay)
        & (dy < ay + asz)
        & (dz >= az)
        & (dz < az + asz)
    )
    return inside & (dlvl > alvl)
