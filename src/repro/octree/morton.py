"""Vectorized 3D Morton (Z-order) codes.

The etree method (paper Section 2.3, [27]) maps a 3D integer coordinate
to a scalar by interleaving the bits of its binary representation.  We
use the classic magic-number "dilated integer" implementation so the
encode/decode work on whole numpy arrays at once.

Coordinates live on an integer lattice of ``2**MAX_LEVEL`` ticks per
axis; an octant at level ``l`` spans ``2**(MAX_LEVEL - l)`` ticks.
"""

from __future__ import annotations

import numpy as np

#: Deepest octree level supported.  16 levels -> 48-bit Morton codes,
#: which (plus 5 level bits) still fit a uint64 packed key.
MAX_LEVEL = 16

#: Number of lattice ticks per axis (domain is [0, MAX_COORD)^3).
MAX_COORD = 1 << MAX_LEVEL

_U = np.uint64


def dilate3(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so consecutive bits are 3 apart.

    ``abcd -> a00b00c00d`` (each input bit followed by two zeros).
    """
    x = np.asarray(x, dtype=np.uint64)
    x = x & _U(0x1FFFFF)
    x = (x | (x << _U(32))) & _U(0x1F00000000FFFF)
    x = (x | (x << _U(16))) & _U(0x1F0000FF0000FF)
    x = (x | (x << _U(8))) & _U(0x100F00F00F00F00F)
    x = (x | (x << _U(4))) & _U(0x10C30C30C30C30C3)
    x = (x | (x << _U(2))) & _U(0x1249249249249249)
    return x


def contract3(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dilate3`: gather every third bit."""
    x = np.asarray(x, dtype=np.uint64)
    x = x & _U(0x1249249249249249)
    x = (x | (x >> _U(2))) & _U(0x10C30C30C30C30C3)
    x = (x | (x >> _U(4))) & _U(0x100F00F00F00F00F)
    x = (x | (x >> _U(8))) & _U(0x1F0000FF0000FF)
    x = (x | (x >> _U(16))) & _U(0x1F00000000FFFF)
    x = (x | (x >> _U(32))) & _U(0x1FFFFF)
    return x


def morton_encode(x, y, z) -> np.ndarray:
    """Interleave integer coordinates ``(x, y, z)`` into Morton codes.

    Bit ``k`` of ``x`` lands at bit ``3k`` of the code, ``y`` at
    ``3k + 1``, ``z`` at ``3k + 2``, so codes sort in Z order.
    Accepts scalars or arrays (broadcast together).
    """
    return (
        dilate3(np.asarray(x, dtype=np.uint64))
        | (dilate3(np.asarray(y, dtype=np.uint64)) << _U(1))
        | (dilate3(np.asarray(z, dtype=np.uint64)) << _U(2))
    )


def morton_decode(code) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover ``(x, y, z)`` integer coordinates from Morton codes."""
    code = np.asarray(code, dtype=np.uint64)
    return contract3(code), contract3(code >> _U(1)), contract3(code >> _U(2))
