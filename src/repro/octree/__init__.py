"""Linear octrees keyed by Morton codes (paper Section 2.3).

The paper addresses octants with a variant of the Morton code: the key of
an octant is the interleaved-bit code of its lower-left corner with the
octant's level appended.  This package provides vectorized Morton
encoding/decoding, octant arithmetic (parents, children, neighbors),
sorted linear octrees with point location, wavelength-adaptive octree
construction, and 2-to-1 balancing — both the plain "ripple" algorithm
and the paper's blocked *local balancing* (internal + boundary phases).
"""

from repro.octree.morton import (
    MAX_LEVEL,
    MAX_COORD,
    morton_encode,
    morton_decode,
    dilate3,
    contract3,
)
from repro.octree.octant import (
    pack_key,
    unpack_key,
    octant_size,
    octant_children,
    octant_parent,
    octant_anchor,
    is_ancestor,
)
from repro.octree.linear_octree import LinearOctree, build_adaptive_octree
from repro.octree.balance import balance_octree, local_balance_octree, is_balanced

__all__ = [
    "MAX_LEVEL",
    "MAX_COORD",
    "morton_encode",
    "morton_decode",
    "dilate3",
    "contract3",
    "pack_key",
    "unpack_key",
    "octant_size",
    "octant_children",
    "octant_parent",
    "octant_anchor",
    "is_ancestor",
    "LinearOctree",
    "build_adaptive_octree",
    "balance_octree",
    "local_balance_octree",
    "is_balanced",
]
