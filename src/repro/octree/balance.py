"""2-to-1 balancing of linear octrees.

The paper's meshes enforce the *2-to-1 constraint*: adjacent leaves
(across faces, edges, and corners) may differ by at most one level, so
hanging grid points are always edge or face midpoints of exactly one
coarser neighbor.

:func:`balance_octree` is the plain "ripple" algorithm, vectorized in
rounds: every queued octant samples the 26 centers of its would-be
equal-size neighbors, locates the containing leaves by Morton binary
search, and any leaf more than one level coarser is split.  Splitting
can create new violations, so newly created children (and unsatisfied
demanders) are re-queued until the tree is balanced.

:func:`local_balance_octree` is the paper's *local balancing* (Section
2.3): the domain is partitioned into equal-size blocks, each block is
balanced internally against only its own leaves, and a final boundary
phase resolves interactions between adjacent blocks.  The minimal
balanced refinement of an octree is unique, so the result is identical
to the global algorithm; the blocked version touches much smaller index
structures in the (dominant) internal phase.
"""

from __future__ import annotations

import numpy as np

from repro.octree.linear_octree import LinearOctree
from repro.octree.morton import MAX_COORD
from repro.octree.octant import octant_anchor, octant_children, octant_size

# the 26 neighbor direction offsets (faces, edges, corners)
_DIRS = np.array(
    [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ],
    dtype=np.int64,
)


def _neighbor_samples(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sample points at the centers of the 26 equal-size neighbors of
    each octant.  Returns ``(points, levels)`` with points of shape
    ``(n * 26, 3)`` and the demanding octant's level repeated alongside.
    """
    x, y, z, level = octant_anchor(keys)
    size = octant_size(level)
    anchors = np.stack([x, y, z], axis=1)
    centers = anchors[:, None, :] + _DIRS[None, :, :] * size[:, None, None]
    centers = centers + (size[:, None, None] // 2)
    points = centers.reshape(-1, 3)
    levels = np.repeat(level, len(_DIRS))
    return points, levels


def _balance_rounds(
    keys: np.ndarray,
    queue: np.ndarray,
    *,
    restrict_block: tuple[np.ndarray, int] | None = None,
) -> np.ndarray:
    """Run ripple-balance rounds until no 2-to-1 violation remains.

    ``keys`` is the full working set of leaves; ``queue`` the initial
    octants whose neighborhoods must be checked.  If ``restrict_block``
    is given as ``(block_anchor, block_size)``, sample points outside
    that block are ignored (used by the internal phase of local
    balancing).
    """
    keyset = set(int(k) for k in keys)
    while len(queue):
        tree = LinearOctree(np.fromiter(keyset, dtype=np.uint64, count=len(keyset)))
        points, dlevels = _neighbor_samples(queue)
        if restrict_block is not None:
            anchor, bsize = restrict_block
            inside = np.all(
                (points >= anchor) & (points < anchor + bsize), axis=1
            )
        else:
            inside = np.all((points >= 0) & (points < MAX_COORD), axis=1)
        idx = np.full(len(points), -1, dtype=np.int64)
        if np.any(inside):
            idx[inside] = tree.locate(points[inside])
        found = idx >= 0
        viol = found & (tree.levels[np.where(found, idx, 0)] < dlevels - 1)
        if not np.any(viol):
            break
        split_keys = np.unique(tree.keys[idx[viol]])
        children = octant_children(split_keys).ravel()
        for k in split_keys:
            keyset.discard(int(k))
        keyset.update(int(k) for k in children)
        # requeue: the new children (their finer level may impose new
        # demands) and the demanders whose request was only partially met
        demanders = np.unique(np.repeat(queue, len(_DIRS))[viol])
        queue = np.unique(np.concatenate([children, demanders]))
    return np.fromiter(keyset, dtype=np.uint64, count=len(keyset))


def balance_octree(tree: LinearOctree) -> LinearOctree:
    """Globally enforce the 2-to-1 constraint (ripple algorithm)."""
    keys = _balance_rounds(tree.keys.copy(), tree.keys.copy())
    return LinearOctree(keys)


def local_balance_octree(tree: LinearOctree, blocks_per_axis: int = 4) -> LinearOctree:
    """Blocked local balancing (paper Section 2.3).

    The domain is split into ``blocks_per_axis**3`` equal cubes.  Leaves
    are first balanced *internally* per block (ignoring demands that
    cross block boundaries), then a *boundary* phase re-queues every
    leaf touching a block face and ripples the remaining violations
    through the merged tree.
    """
    if blocks_per_axis < 1 or (MAX_COORD % blocks_per_axis):
        raise ValueError("blocks_per_axis must divide the lattice size")
    bsize = MAX_COORD // blocks_per_axis
    if len(tree.keys) and int(tree.sizes.max()) > bsize:
        raise ValueError(
            "blocks_per_axis too large: every leaf must fit inside one "
            "block (coarsest leaf size "
            f"{int(tree.sizes.max())} > block size {bsize})"
        )
    x, y, z, level = octant_anchor(tree.keys)
    block_id = (x // bsize) * blocks_per_axis**2 + (y // bsize) * blocks_per_axis + (
        z // bsize
    )
    merged: list[np.ndarray] = []
    order = np.argsort(block_id, kind="stable")
    sorted_keys = tree.keys[order]
    sorted_blocks = block_id[order]
    boundaries = np.searchsorted(
        sorted_blocks, np.unique(sorted_blocks), side="left"
    ).tolist() + [len(sorted_keys)]
    for i in range(len(boundaries) - 1):
        blk_keys = sorted_keys[boundaries[i] : boundaries[i + 1]]
        bid = int(sorted_blocks[boundaries[i]])
        bx = (bid // blocks_per_axis**2) * bsize
        by = ((bid // blocks_per_axis) % blocks_per_axis) * bsize
        bz = (bid % blocks_per_axis) * bsize
        anchor = np.array([bx, by, bz], dtype=np.int64)
        merged.append(
            _balance_rounds(blk_keys, blk_keys, restrict_block=(anchor, bsize))
        )
    keys = np.concatenate(merged)
    # boundary phase: only leaves touching a block boundary can still be
    # involved in cross-block violations
    xx, yy, zz, lvl = octant_anchor(keys)
    sz = octant_size(lvl)
    touches = (
        (xx % bsize == 0)
        | (yy % bsize == 0)
        | (zz % bsize == 0)
        | ((xx + sz) % bsize == 0)
        | ((yy + sz) % bsize == 0)
        | ((zz + sz) % bsize == 0)
    )
    keys = _balance_rounds(keys, keys[touches])
    return LinearOctree(keys)


def is_balanced(tree: LinearOctree) -> bool:
    """Check the 2-to-1 constraint across faces, edges, and corners."""
    points, dlevels = _neighbor_samples(tree.keys)
    inside = np.all((points >= 0) & (points < MAX_COORD), axis=1)
    idx = np.full(len(points), -1, dtype=np.int64)
    idx[inside] = tree.locate(points[inside])
    found = idx >= 0
    viol = found & (tree.levels[np.where(found, idx, 0)] < dlevels - 1)
    return not bool(np.any(viol))
