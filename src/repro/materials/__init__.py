"""Material (velocity) models.

Every model exposes ``query(points_m) -> (vs, vp, rho)``, vectorized
over ``(n, 3)`` physical points in meters with ``z`` pointing down.
:class:`SyntheticBasinModel` is our stand-in for the SCEC Community
Velocity Model of the Greater LA Basin (see DESIGN.md): a soft
sedimentary basin (vs down to ~100 m/s near the surface, as in the
paper's 1 Hz runs) embedded in layered bedrock reaching ~4500 m/s.
"""

from repro.materials.models import (
    HomogeneousMaterial,
    LayeredMaterial,
    MaterialModel,
)
from repro.materials.cvm import SyntheticBasinModel

__all__ = [
    "MaterialModel",
    "HomogeneousMaterial",
    "LayeredMaterial",
    "SyntheticBasinModel",
]
