"""Synthetic Greater-LA-Basin community velocity model.

Stand-in for the SCEC CVM used by the paper (see DESIGN.md).  The model
combines:

* an **ellipsoidal sedimentary basin** whose shear velocity follows the
  soft-soil depth profile ``vs(z) = vs0 + k sqrt(z_rel)`` (~100-1000
  m/s), producing the 100 m/s minimum shear velocity of the paper's 1 Hz
  runs and the strong refinement contrast that motivates octree meshes;
* **layered bedrock** outside/below the basin, stiffening from ~2000 m/s
  near the surface to 4500 m/s at depth (paper Figure 2.3's color
  scale).

Density from the Nafe-Drake-style empirical fit
``rho = 1740 * (vp/1000)^0.25`` (kg/m^3); ``vp`` from a vp/vs ratio of
2 in sediments and 1.73 in rock.
"""

from __future__ import annotations

import numpy as np


class SyntheticBasinModel:
    """Ellipsoidal soft basin in layered bedrock.

    Parameters
    ----------
    L:
        Horizontal extent of the model box (meters); the basin scales
        with it.
    depth:
        Model depth (meters).
    vs_min:
        Surface shear velocity in the basin center (paper: 100 m/s at
        1 Hz, 500 m/s at lower resolutions).
    basin_center / basin_radii:
        Ellipsoid center (x, y) and radii (rx, ry, rz) in meters;
        defaults put a basin of ~0.35 L radius, ~6% L deep, slightly
        off-center (like the LA basin within the model box).
    """

    def __init__(
        self,
        L: float = 80_000.0,
        depth: float = 30_000.0,
        *,
        vs_min: float = 100.0,
        basin_center: tuple[float, float] | None = None,
        basin_radii: tuple[float, float, float] | None = None,
        seed: int = 0,
    ):
        self.L = float(L)
        self.depth = float(depth)
        self.vs_min = float(vs_min)
        cx, cy = basin_center or (0.55 * L, 0.45 * L)
        rx, ry, rz = basin_radii or (0.35 * L, 0.28 * L, 0.06 * L)
        self.center = np.array([cx, cy])
        self.radii = np.array([rx, ry, rz])
        # gentle deterministic roughness of the basin floor so meshes
        # are not trivially axis-aligned
        self._seed = seed

    # rock layer structure: depth of bottom (m), vs (m/s)
    _ROCK_INTERFACES = np.array([1_000.0, 4_000.0, 10_000.0, 17_000.0])
    _ROCK_VS = np.array([2000.0, 2500.0, 3200.0, 3800.0, 4500.0])

    def basin_depth_at(self, xy: np.ndarray) -> np.ndarray:
        """Local basin thickness below (x, y); zero outside the basin."""
        rel = (np.atleast_2d(xy) - self.center) / self.radii[:2]
        r2 = np.sum(rel**2, axis=1)
        inside = r2 < 1.0
        d = np.zeros(len(rel))
        d[inside] = self.radii[2] * np.sqrt(1.0 - r2[inside])
        # deterministic gentle undulation (+-8%)
        ang = 7.3 * rel[:, 0] + 11.1 * rel[:, 1] + self._seed
        d *= 1.0 + 0.08 * np.sin(ang)
        return d

    def query(self, points: np.ndarray):
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
        bdepth = self.basin_depth_at(pts[:, :2])
        in_basin = (z < bdepth) & (bdepth > 0)

        # rock: layered, with a mild positive gradient inside each layer
        li = np.searchsorted(self._ROCK_INTERFACES, z, side="right")
        vs = self._ROCK_VS[li] * (1.0 + 0.02 * np.clip(z, 0, self.depth) / self.depth)

        # basin sediments: vs0 + k sqrt(z); k chosen so vs reaches the
        # rock value at the basin floor
        zb = np.where(in_basin, z, 0.0)
        db = np.where(bdepth > 0, bdepth, 1.0)
        vs_floor = self._ROCK_VS[0]
        k = (vs_floor - self.vs_min) / np.sqrt(db)
        vs_basin = self.vs_min + k * np.sqrt(np.maximum(zb, 0.0))
        vs = np.where(in_basin, vs_basin, vs)

        # vp and density from empirical relations
        vpvs = np.where(in_basin, 2.0, 1.73)
        vp = np.maximum(vpvs * vs, 1500.0)  # water-saturated floor
        # keep vp physically admissible for very soft sediments
        vp = np.maximum(vp, np.sqrt(2.0) * vs * 1.001)
        rho = 1740.0 * (vp / 1000.0) ** 0.25
        return vs, vp, rho
