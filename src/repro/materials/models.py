"""Basic material models: homogeneous and horizontally layered."""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np


class MaterialModel(Protocol):
    """Anything that can be queried for seismic properties."""

    def query(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(vs, vp, rho)`` at physical points ``(n, 3)`` meters."""
        ...  # pragma: no cover


class HomogeneousMaterial:
    """Uniform halfspace."""

    def __init__(self, vs: float, vp: float, rho: float):
        if vp < np.sqrt(2.0) * vs:
            raise ValueError("vp must be at least sqrt(2) vs")
        self.vs, self.vp, self.rho = float(vs), float(vp), float(rho)

    def query(self, points: np.ndarray):
        n = len(np.atleast_2d(points))
        return (
            np.full(n, self.vs),
            np.full(n, self.vp),
            np.full(n, self.rho),
        )


class LayeredMaterial:
    """Horizontal layers over a halfspace (z down, meters).

    ``interfaces`` are the depths of the layer *bottoms*; a point deeper
    than the last interface gets the halfspace properties (the last
    entry of each property list).
    """

    def __init__(
        self,
        interfaces: Sequence[float],
        vs: Sequence[float],
        vp: Sequence[float],
        rho: Sequence[float],
    ):
        self.interfaces = np.asarray(interfaces, dtype=float)
        if np.any(np.diff(self.interfaces) <= 0):
            raise ValueError("interfaces must be strictly increasing")
        nlayer = len(self.interfaces) + 1
        for name, arr in (("vs", vs), ("vp", vp), ("rho", rho)):
            if len(arr) != nlayer:
                raise ValueError(
                    f"{name} needs {nlayer} entries (layers + halfspace)"
                )
        self.vs = np.asarray(vs, dtype=float)
        self.vp = np.asarray(vp, dtype=float)
        self.rho = np.asarray(rho, dtype=float)
        if np.any(self.vp < np.sqrt(2.0) * self.vs):
            raise ValueError("every layer needs vp >= sqrt(2) vs")

    def layer_of(self, z: np.ndarray) -> np.ndarray:
        return np.searchsorted(self.interfaces, np.asarray(z, dtype=float), "right")

    def query(self, points: np.ndarray):
        pts = np.atleast_2d(points)
        li = self.layer_of(pts[:, 2])
        return self.vs[li], self.vp[li], self.rho[li]
