"""Terminal-friendly field rendering.

Matplotlib-free helpers used by the examples and benchmarks to show 2D
sections and surface snapshots as character rasters — enough to see the
basin geometry, wavefronts, and inverted structure in a terminal log.
"""

from __future__ import annotations

import numpy as np

#: ramp from quiet to intense
_RAMP = " .:-=+*#%@"


def render_grid(values: np.ndarray, *, vmin=None, vmax=None,
                transpose: bool = False) -> str:
    """Render a 2D array as characters (rows = second axis by default,
    matching the (x, depth) layout of cross-sections: surface on top).
    """
    v = np.asarray(values, dtype=float)
    if v.ndim != 2:
        raise ValueError("render_grid needs a 2D array")
    if transpose:
        v = v.T
    lo = float(np.min(v)) if vmin is None else float(vmin)
    hi = float(np.max(v)) if vmax is None else float(vmax)
    span = hi - lo if hi > lo else 1.0
    idx = np.clip(
        ((v - lo) / span * (len(_RAMP) - 1)).round().astype(int),
        0,
        len(_RAMP) - 1,
    )
    rows = []
    for j in range(v.shape[1]):
        rows.append("".join(_RAMP[i] for i in idx[:, j]))
    return "\n".join(rows)


def render_section(grid, m: np.ndarray, **kw) -> str:
    """Render a nodal field on a :class:`MaterialGrid` (2D) with the
    free surface on top."""
    v = np.asarray(m, dtype=float).reshape(grid.node_shape)
    return render_grid(v, **kw)


def render_surface_snapshot(
    mesh, nodes: np.ndarray, values: np.ndarray, *, width: int = 64
) -> str:
    """Rasterize scattered free-surface samples onto a character grid
    (used for the Figure 2.5-style wavefront frames)."""
    xy = mesh.coords[nodes][:, :2]
    L = mesh.box_lengths[:2]
    nx = width
    ny = max(2, int(width * L[1] / L[0]))
    img = np.zeros((nx, ny))
    cnt = np.zeros((nx, ny))
    ix = np.clip((xy[:, 0] / L[0] * (nx - 1)).astype(int), 0, nx - 1)
    iy = np.clip((xy[:, 1] / L[1] * (ny - 1)).astype(int), 0, ny - 1)
    np.add.at(img, (ix, iy), values)
    np.add.at(cnt, (ix, iy), 1.0)
    img = np.divide(img, cnt, out=np.zeros_like(img), where=cnt > 0)
    return render_grid(img)
