"""Receivers and recorded time series."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Seismograms:
    """Recorded displacement/velocity time series.

    ``data`` has shape ``(nrec, ncomp, nsteps)``; ``dt`` is the sample
    interval.
    """

    data: np.ndarray
    dt: float
    kind: str = "velocity"
    positions: np.ndarray | None = None

    @property
    def times(self) -> np.ndarray:
        return np.arange(self.data.shape[-1]) * self.dt

    def lowpassed(self, f_cut: float) -> "Seismograms":
        from repro.util.filters import lowpass

        return Seismograms(
            data=lowpass(self.data, self.dt, f_cut),
            dt=self.dt,
            kind=self.kind,
            positions=self.positions,
        )

    def misfit(self, other: "Seismograms") -> float:
        """Relative L2 waveform misfit against another recording."""
        num = np.linalg.norm(self.data - other.data)
        den = np.linalg.norm(other.data)
        return float(num / den) if den > 0 else float(num)

    def peak_ground_motion(self) -> np.ndarray:
        """Peak absolute amplitude per receiver (PGV for velocity
        recordings, PGD for displacement)."""
        return np.abs(self.data).max(axis=(1, 2))

    def save(self, path: str) -> None:
        """Write to a compressed ``.npz`` archive."""
        np.savez_compressed(
            path,
            data=self.data,
            dt=self.dt,
            kind=self.kind,
            positions=(
                self.positions
                if self.positions is not None
                else np.zeros((0, 3))
            ),
        )

    @staticmethod
    def load(path: str) -> "Seismograms":
        """Read an archive written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as z:
            positions = z["positions"]
            return Seismograms(
                data=z["data"],
                dt=float(z["dt"]),
                kind=str(z["kind"]),
                positions=positions if positions.size else None,
            )


class ReceiverArray:
    """Nearest-node receivers recording the solution every step."""

    def __init__(self, mesh, positions: np.ndarray):
        from repro.octree.morton import MAX_COORD

        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        ticks = positions / mesh.L * MAX_COORD
        # nearest mesh node by rounding onto the lattice then searching
        # the node array (exact for receivers placed on grid points)
        d2 = None
        self.nodes = np.empty(len(positions), dtype=np.int64)
        node_ticks = mesh.node_ticks
        for i, t in enumerate(ticks):
            d2 = np.sum((node_ticks - t) ** 2, axis=1)
            self.nodes[i] = int(np.argmin(d2))
        self.positions = node_ticks[self.nodes] * (mesh.L / MAX_COORD)
        self.nrec = len(self.nodes)

    def allocate(self, ncomp: int, nsteps: int) -> np.ndarray:
        return np.zeros((self.nrec, ncomp, nsteps))
