"""Free-surface wavefield snapshots (paper Figures 2.2 and 2.5)."""

from __future__ import annotations

import numpy as np


class SnapshotRecorder:
    """Records the magnitude of a nodal field on a node subset at a
    fixed stride of time steps."""

    def __init__(self, node_subset: np.ndarray, every: int):
        self.nodes = np.asarray(node_subset, dtype=np.int64)
        self.every = int(every)
        self.times: list[float] = []
        self.frames: list[np.ndarray] = []

    def maybe_record(self, step: int, t: float, field: np.ndarray) -> None:
        if step % self.every:
            return
        f = field[self.nodes]
        mag = np.linalg.norm(f, axis=1) if f.ndim == 2 else np.abs(f)
        self.times.append(float(t))
        self.frames.append(mag.copy())

    def as_array(self) -> np.ndarray:
        """Stacked frames, shape ``(nframes, nnodes_subset)``."""
        return np.stack(self.frames) if self.frames else np.zeros((0, 0))
