"""Observation capture: receivers (seismograms) and wavefield snapshots."""

from repro.io.seismogram import ReceiverArray, Seismograms
from repro.io.snapshots import SnapshotRecorder
from repro.io.viz import render_grid, render_section, render_surface_snapshot

__all__ = [
    "ReceiverArray",
    "Seismograms",
    "SnapshotRecorder",
    "render_grid",
    "render_section",
    "render_surface_snapshot",
]
